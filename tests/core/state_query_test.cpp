// StateQuery API (ctest label: mvcc): read-only point/range queries over
// the frozen epochs the MVCC checkpoints expose. The differential
// contract: the hub's final pre-flush cut predicts the fired-window
// output exactly — for every (key, instance) the cut holds, the flow
// emitted (output_ts(l), agg), and nothing else. Plus: consistent reads
// from a concurrent query thread while the threaded flow ingests (the
// TSan half of the contract), and the async-checkpointer composition.
#include "core/runtime/state_query.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/recovery/async_checkpoint.hpp"
#include "core/recovery/replay_source.hpp"
#include "core/recovery/supervisor.hpp"
#include "core/swa/monoid_aggregate.hpp"

namespace aggspes {
namespace {

constexpr Timestamp kPeriod = 7;
constexpr std::size_t kMarkerEvery = 16;
// Lateness far past the stream end: no pane is purged before the final
// cut, so the cut covers every instance that ever held data.
const WindowSpec kSpec{.advance = 4, .size = 12, .lateness = 100000};

int key_of(int v) { return v % 3; }

std::vector<Tuple<int>> random_stream(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 9);
  std::vector<Tuple<int>> v;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

using SumOp = swa::MonoidAggregateOp<int, long, int, long>;
using Hub = StateQueryHub<int, long>;

template <typename FlowT>
SumOp& add_sum(FlowT& f) {
  return f.template add<SumOp>(
      kSpec, key_of,
      swa::Monoid<int, long>{0, [](const int& v) { return long{v}; },
                             [](const long& a, const long& b) { return a + b; }},
      [](const int&, const swa::WindowAggregate<long>& wa)
          -> std::optional<long> { return wa.agg; });
}

/// Brute-force per-(key, instance) sums straight from the input.
std::map<std::pair<int, Timestamp>, std::pair<long, std::uint64_t>>
brute_force(const std::vector<Tuple<int>>& in) {
  std::map<std::pair<int, Timestamp>, std::pair<long, std::uint64_t>> m;
  for (const Tuple<int>& t : in) {
    for (Timestamp l = floor_div(t.ts, kSpec.advance) * kSpec.advance;
         l > t.ts - kSpec.size; l -= kSpec.advance) {
      auto& e = m[{key_of(t.value), l}];
      e.first += t.value;
      e.second += 1;
    }
  }
  return m;
}

TEST(StateQuery, FinalCutPredictsTheFiredOutputExactly) {
  const auto in = random_stream(301, 240);
  const Timestamp flush = in.back().ts + 30;
  const auto expect = brute_force(in);
  ASSERT_FALSE(expect.empty());

  Hub hub;
  Flow flow;
  auto& src = flow.add<TimedSource<int>>(in, kPeriod, flush);
  auto& agg = add_sum(flow);
  agg.serve_state(&hub);
  auto& sink = flow.add<CollectorSink<long>>();
  flow.connect(src.out(), agg.in(0));
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_TRUE(sink.ended());

  // Point reads match the brute force, entry for entry.
  for (const auto& [kl, sum_count] : expect) {
    const auto got = hub.point(kl.first, kl.second);
    ASSERT_TRUE(got.has_value())
        << "key " << kl.first << " l " << kl.second;
    EXPECT_EQ(got->agg, sum_count.first);
    EXPECT_EQ(got->count, sum_count.second);
  }
  // An instance that never held data for the key reads as nullopt.
  EXPECT_FALSE(hub.point(0, -40000).has_value());

  // The cut PREDICTS the fired output: lowering every held instance
  // yields exactly the sink's multiset (the end-of-stream flush fires
  // whatever had not fired yet, and nothing was purged).
  std::multiset<std::pair<Timestamp, long>> predicted;
  for (const auto& [kl, sum_count] : expect) {
    predicted.insert({kSpec.output_ts(kl.second), sum_count.first});
  }
  EXPECT_EQ(sink.multiset(), predicted);

  // Range reads agree with point reads and come back ascending.
  for (int key = 0; key < 3; ++key) {
    const auto lo = expect.begin()->first.second - kSpec.size;
    const auto hi = in.back().ts + kSpec.advance;
    const auto ranged = hub.range(key, lo, hi);
    Timestamp prev = lo - 1;
    std::size_t found = 0;
    for (const auto& [l, wa] : ranged) {
      EXPECT_GT(l, prev);
      prev = l;
      const auto it = expect.find({key, l});
      ASSERT_NE(it, expect.end()) << "phantom instance l=" << l;
      EXPECT_EQ(wa.agg, it->second.first);
      ++found;
    }
    std::size_t want = 0;
    for (const auto& [kl, sc] : expect) {
      if (kl.first == key && kl.second >= lo && kl.second < hi) ++want;
    }
    EXPECT_EQ(found, want) << "key " << key;
  }

  EXPECT_GE(hub.published(), 1u);
  EXPECT_GT(hub.epoch(), 0u);
  EXPECT_EQ(hub.watermark(), flush);
}

TEST(StateQuery, ConcurrentReaderSeesMonotonicConsistentCuts) {
  const auto in = random_stream(302, 240);
  const Timestamp flush = in.back().ts + 30;
  const auto expect = brute_force(in);

  Hub hub;
  ThreadedFlow tf;
  auto& src = tf.add<ReplaySource<int>>(in, kPeriod, flush, kMarkerEvery);
  auto& agg = add_sum(tf);
  agg.serve_state(&hub);
  auto& sink = tf.add<CollectorSink<long>>();
  tf.connect(src, src.out(), agg, agg.in(0));
  tf.connect(agg, agg.out(), sink, sink.in());

  std::atomic<bool> done{false};
  std::uint64_t reads = 0;
  Timestamp last_wm = kMinTimestamp;
  std::uint64_t last_epoch = 0;
  bool monotonic = true;
  bool stable = true;
  // On a loaded (or single-core) host the ingest threads may finish
  // before the reader ever runs, so loop until BOTH the flow is done and
  // a minimum number of reads has landed — whatever overlap the
  // scheduler provides is exercised, and the assertions never starve.
  constexpr std::uint64_t kMinReads = 64;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire) || reads < kMinReads) {
      const auto s = hub.snapshot();
      if (s == nullptr) continue;
      if (s->watermark < last_wm || s->epoch < last_epoch) monotonic = false;
      last_wm = s->watermark;
      last_epoch = s->epoch;
      // Two reads against ONE snapshot must agree even while ingestion
      // keeps mutating the live map (COW isolation).
      for (int key = 0; key < 3; ++key) {
        const Timestamp probe =
            floor_div(s->watermark, kSpec.advance) * kSpec.advance -
            kSpec.size;
        const auto a = s->point(key, probe);
        const auto b = s->point(key, probe);
        if (a.has_value() != b.has_value() ||
            (a.has_value() && (a->agg != b->agg || a->count != b->count))) {
          stable = false;
        }
        ++reads;
      }
    }
  });
  tf.run();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(monotonic);
  EXPECT_TRUE(stable);
  EXPECT_GE(reads, kMinReads);
  ASSERT_TRUE(sink.ended());
  // Barriers published live cuts along the way, the end published the
  // final one — which still matches the brute force.
  EXPECT_GE(hub.published(), 2u);
  for (const auto& [kl, sum_count] : expect) {
    const auto got = hub.point(kl.first, kl.second);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->agg, sum_count.first);
    EXPECT_EQ(got->count, sum_count.second);
  }
}

TEST(StateQuery, ServesCutsUnderTheAsyncCheckpointer) {
  const auto in = random_stream(303, 240);
  const Timestamp flush = in.back().ts + 30;
  const auto expect = brute_force(in);

  // Fault-free reference for the output equivalence.
  Flow single;
  auto& s_src = single.add<TimedSource<int>>(in, kPeriod, flush);
  auto& s_agg = add_sum(single);
  auto& s_sink = single.add<CollectorSink<long>>();
  single.connect(s_src.out(), s_agg.in(0));
  single.connect(s_agg.out(), s_sink.in());
  single.run();
  const auto reference = s_sink.multiset();

  Hub hub;
  CheckpointStore store;
  AsyncCheckpointer ck;
  CollectorSink<long>* sink = nullptr;
  auto build = [&](ThreadedFlow& tf) {
    auto& src = tf.add<ReplaySource<int>>(in, kPeriod, flush, kMarkerEvery);
    auto& agg = add_sum(tf);
    agg.serve_state(&hub);
    sink = &tf.add<CollectorSink<long>>();
    tf.connect(src, src.out(), agg, agg.in(0));
    tf.connect(agg, agg.out(), *sink, sink->in());
  };
  RecoveryOptions opts;
  opts.checkpointer = &ck;
  RecoveryReport report = run_with_recovery(build, store, nullptr, opts);
  ASSERT_TRUE(sink->ended());
  EXPECT_EQ(sink->multiset(), reference);
  EXPECT_EQ(report.attempts, 1);
  // The worker actually serialized cuts off the barrier path…
  EXPECT_GT(ck.completed(), 0u);
  EXPECT_EQ(ck.discarded(), 0u);
  EXPECT_TRUE(store.latest_complete().has_value());
  // …and the hub still ends on the exact final state.
  for (const auto& [kl, sum_count] : expect) {
    const auto got = hub.point(kl.first, kl.second);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->agg, sum_count.first);
  }
}

}  // namespace
}  // namespace aggspes
