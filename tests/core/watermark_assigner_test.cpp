// Tests for watermark assignment policies (the ingress-side machinery
// behind condition C1) and the stream probes.
#include "core/operators/watermark_assigner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aggbased/flatmap.hpp"
#include "core/operators/probe.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

std::vector<Element<int>> raw_script(std::vector<Tuple<int>> tuples) {
  std::vector<Element<int>> s;
  for (auto& t : tuples) s.push_back(std::move(t));
  s.push_back(EndOfStream{});
  return s;
}

StreamStats run_assigner(std::vector<Tuple<int>> in,
                         WatermarkPolicy policy) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(raw_script(std::move(in)));
  auto& wm = flow.add<WatermarkAssigner<int>>(policy);
  auto& probe = flow.add<ProbeOp<int>>();
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), wm.in());
  flow.connect(wm.out(), probe.in());
  flow.connect(probe.out(), sink.in());
  flow.run();
  return probe.stats();  // copied out; the flow may be destroyed
}

TEST(WatermarkAssigner, AscendingStreamGetsPeriodicWatermarks) {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 50; ts += 2) in.push_back({ts, 0, int(ts)});
  auto stats = run_assigner(in, {.period = 10, .bound = 0});
  EXPECT_EQ(stats.tuples, 25u);
  EXPECT_GE(stats.watermarks, 4u);
  EXPECT_EQ(stats.late_tuples, 0u);
  EXPECT_EQ(stats.watermark_regressions, 0u);
  EXPECT_GE(stats.last_watermark, 49);  // final flush covers everything
  EXPECT_TRUE(stats.ended);
}

TEST(WatermarkAssigner, C1SpacingHolds) {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 100; ts += 7) in.push_back({ts, 0, int(ts)});
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(raw_script(in));
  auto& wm = flow.add<WatermarkAssigner<int>>(
      WatermarkPolicy{.period = 10, .bound = 0});
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), wm.in());
  flow.connect(wm.out(), sink.in());
  flow.run();
  const auto& wms = sink.watermarks();
  ASSERT_GE(wms.size(), 2u);
  for (std::size_t i = 1; i < wms.size(); ++i) {
    EXPECT_LE(wms[i] - wms[i - 1], 10) << "C1 spacing violated at " << i;
    EXPECT_GT(wms[i], wms[i - 1]);
  }
}

TEST(WatermarkAssigner, BoundedDisorderNeverMakesTuplesLate) {
  // Tuples jitter by up to 5 ticks; bound = 5 must keep everything on time.
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 60; ts += 3) {
    const Timestamp jitter = (ts % 2 == 0 && ts >= 5) ? -5 : 0;
    in.push_back({ts + jitter, 0, int(ts)});
  }
  auto stats = run_assigner(in, {.period = 8, .bound = 5});
  EXPECT_EQ(stats.late_tuples, 0u);
  EXPECT_EQ(stats.watermark_regressions, 0u);
}

TEST(WatermarkAssigner, DisorderBeyondBoundIsCounted) {
  std::vector<Tuple<int>> in{{0, 0, 0},  {10, 0, 1}, {20, 0, 2},
                             {30, 0, 3}, {5, 0, 4}};  // 25 ticks late
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(raw_script(in));
  auto& wm = flow.add<WatermarkAssigner<int>>(
      WatermarkPolicy{.period = 5, .bound = 2});
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), wm.in());
  flow.connect(wm.out(), sink.in());
  flow.run();
  EXPECT_EQ(wm.violations(), 1u);
  EXPECT_EQ(sink.late_tuples(), 1);  // surfaced downstream too
}

TEST(WatermarkAssigner, FeedsAnAggBasedCompositionCorrectly) {
  // End to end: raw (watermark-less) stream -> assigner -> AggBased FM.
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 40; ++ts) in.push_back({ts, 0, int(ts % 6)});
  FlatMapFn<int, int> fm = [](const int& v) {
    return v % 2 ? std::vector<int>{v * 10} : std::vector<int>{};
  };

  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(raw_script(in));
  auto& wm = flow.add<WatermarkAssigner<int>>(
      WatermarkPolicy{.period = 6, .bound = 0});
  AggBasedFlatMap<int, int> op(flow, fm, /*lateness=*/6);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), wm.in());
  flow.connect(wm.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();

  std::size_t expected = 0;
  for (const auto& t : in) expected += (t.value % 2) ? 1 : 0;
  EXPECT_EQ(sink.tuples().size(), expected);
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_TRUE(sink.ended());
}

TEST(Probe, TransparentAndCounting) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
      Tuple<int>{3, 0, 1}, Tuple<int>{7, 0, 2}, Watermark{8},
      EndOfStream{}});
  auto& probe = flow.add<ProbeOp<int>>();
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), probe.in());
  flow.connect(probe.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 2u);  // transparent
  const auto& s = probe.stats();
  EXPECT_EQ(s.tuples, 2u);
  EXPECT_EQ(s.min_ts, 3);
  EXPECT_EQ(s.max_ts, 7);
  EXPECT_EQ(s.watermarks, 1u);
  EXPECT_EQ(s.last_watermark, 8);
  EXPECT_TRUE(s.ended);
  EXPECT_NE(s.summary().find("2 tuples"), std::string::npos);
  EXPECT_NE(s.summary().find("ended"), std::string::npos);
}

}  // namespace
}  // namespace aggspes
