// Randomized differential fuzzer for multi-query pane sharing
// (DESIGN.md § 14): a SharedLattice hosting Q concurrent queries must be
// element-identical, per query, to Q independent single-query flows — the
// oracles — for every window backend. Spec lattices are generated in four
// seeded shapes (identical, nested, coprime, degenerate), with random
// per-query lateness, random key cardinality, out-of-order input and
// genuine late arrivals (admitted re-fires and drops). Output multisets
// are compared because per-instance key fire order is
// unordered_map-dependent; per-query dropped/late counters pin the
// lateness bookkeeping to each query's own scope.
//
// Coverage arithmetic: 4 shapes × Q ∈ {2, 16} × 5 seeds × 5 backends =
// 200 lattice/backend combinations.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/runtime/multi_query.hpp"
#include "core/swa/backends.hpp"
#include "core/swa/monoid_aggregate.hpp"

namespace aggspes {
namespace {

std::vector<Tuple<int>> random_tuples(unsigned seed, int n, Timestamp start) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 20);
  std::vector<Tuple<int>> v;
  Timestamp ts = start;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

/// Locally-shuffled script with aggressive watermarks (the
/// swa_equivalence idiom): each watermark trails the running max
/// timestamp by a small random slack, so shuffled tuples genuinely
/// arrive late — some within a query's L (re-fires), some beyond it
/// (drops). Every run under comparison sees the identical sequence.
std::vector<Element<int>> lateish_script(std::vector<Tuple<int>> tuples,
                                         int k, int wm_every,
                                         Timestamp flush_to, unsigned seed) {
  std::mt19937 rng(seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + static_cast<std::size_t>(k)));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  std::uniform_int_distribution<Timestamp> slack(0, 4);
  std::vector<Element<int>> script;
  Timestamp max_ts = kMinTimestamp;
  Timestamp last_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    script.push_back(tuples[i]);
    max_ts = std::max(max_ts, tuples[i].ts);
    if ((i + 1) % static_cast<std::size_t>(wm_every) == 0) {
      const Timestamp w = max_ts - slack(rng);
      if (w > last_wm) {
        script.push_back(Watermark{w});
        last_wm = w;
      }
    }
  }
  script.push_back(Watermark{flush_to});
  script.push_back(EndOfStream{});
  return script;
}

struct QueryOutput {
  std::multiset<std::pair<Timestamp, int>> out;
  std::uint64_t dropped{0};
  std::uint64_t late_updates{0};
};

int sum_items(const WindowView<int, int>& w) {
  int s = 0;
  for (const auto& t : w.items) s += t.value;
  return s;
}

/// One dedicated single-query flow — the oracle — for a replay-family
/// backend (buffering or sliced-replay).
template <typename AggT>
QueryOutput oracle_replay(const std::vector<Element<int>>& script,
                          WindowSpec spec, int key_mod) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<AggT>(
      spec, [key_mod](const int& v) { return v % key_mod; },
      [](const WindowView<int, int>& w) -> std::optional<int> {
        return sum_items(w);
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  return {sink.multiset(), agg.machine().dropped_late(),
          agg.machine().late_updates()};
}

/// Oracle for a monoid-family backend (pane-monoid, DABA, finger-tree).
template <typename AggT>
QueryOutput oracle_monoid(const std::vector<Element<int>>& script,
                          WindowSpec spec, int key_mod) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<AggT>(
      spec, [key_mod](const int& v) { return v % key_mod; },
      swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa)
          -> std::optional<int> { return wa.agg; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  return {sink.multiset(), agg.machine().dropped_late(),
          agg.machine().late_updates()};
}

/// All Q queries through ONE shared lattice in replay mode.
std::vector<QueryOutput> shared_replay(const std::vector<Element<int>>& script,
                                       const std::vector<WindowSpec>& specs,
                                       int key_mod) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  std::vector<ReplayQuery<int, int, int>> queries;
  for (const WindowSpec& s : specs) {
    queries.push_back({s, [](const WindowView<int, int>& w)
                              -> std::optional<int> { return sum_items(w); }});
  }
  auto& op = flow.add<MultiQueryReplayOp<int, int, int>>(
      std::move(queries), [key_mod](const int& v) { return v % key_mod; });
  std::vector<CollectorSink<int>*> sinks;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    sinks.push_back(&flow.add<CollectorSink<int>>());
  }
  flow.connect(src.out(), op.in());
  for (std::size_t q = 0; q < specs.size(); ++q) {
    flow.connect(op.out(static_cast<int>(q)), sinks[q]->in());
  }
  flow.run();
  std::vector<QueryOutput> r;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    const int qi = static_cast<int>(q);
    r.push_back({sinks[q]->multiset(), op.lattice().dropped_late(qi),
                 op.lattice().late_updates(qi)});
  }
  return r;
}

/// All Q queries through ONE shared lattice in monoid mode (per-key
/// finger-tree range folds over the shared panes).
std::vector<QueryOutput> shared_monoid(const std::vector<Element<int>>& script,
                                       const std::vector<WindowSpec>& specs,
                                       int key_mod) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  std::vector<MonoidQuery<int, int, int>> queries;
  for (const WindowSpec& s : specs) {
    queries.push_back({s, [](const int&, const swa::WindowAggregate<int>& wa)
                              -> std::optional<int> { return wa.agg; }});
  }
  auto& op = flow.add<MultiQueryMonoidOp<int, int, int, int>>(
      std::move(queries), [key_mod](const int& v) { return v % key_mod; },
      swa::sum_monoid<int>());
  std::vector<CollectorSink<int>*> sinks;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    sinks.push_back(&flow.add<CollectorSink<int>>());
  }
  flow.connect(src.out(), op.in());
  for (std::size_t q = 0; q < specs.size(); ++q) {
    flow.connect(op.out(static_cast<int>(q)), sinks[q]->in());
  }
  flow.run();
  std::vector<QueryOutput> r;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    const int qi = static_cast<int>(q);
    r.push_back({sinks[q]->multiset(), op.lattice().dropped_late(qi),
                 op.lattice().late_updates(qi)});
  }
  return r;
}

enum class Backend { kBuffering, kSlicedReplay, kMonoid, kDaba, kFingerTree };

constexpr Backend kAllBackends[] = {Backend::kBuffering,
                                    Backend::kSlicedReplay, Backend::kMonoid,
                                    Backend::kDaba, Backend::kFingerTree};

bool is_monoid_backend(Backend b) {
  return b == Backend::kMonoid || b == Backend::kDaba ||
         b == Backend::kFingerTree;
}

const char* backend_tag(Backend b) {
  switch (b) {
    case Backend::kBuffering: return "buffering";
    case Backend::kSlicedReplay: return "sliced-replay";
    case Backend::kMonoid: return "monoid";
    case Backend::kDaba: return "daba";
    case Backend::kFingerTree: return "finger-tree";
  }
  return "?";
}

QueryOutput run_oracle(Backend b, const std::vector<Element<int>>& script,
                       WindowSpec spec, int key_mod) {
  switch (b) {
    case Backend::kBuffering:
      return oracle_replay<AggregateOp<int, int, int>>(script, spec, key_mod);
    case Backend::kSlicedReplay:
      return oracle_replay<swa::SlicedAggregateOp<int, int, int>>(script, spec,
                                                                  key_mod);
    case Backend::kMonoid:
      return oracle_monoid<swa::MonoidAggregateOp<int, int, int, int>>(
          script, spec, key_mod);
    case Backend::kDaba:
      return oracle_monoid<swa::DabaAggregateOp<int, int, int, int>>(
          script, spec, key_mod);
    case Backend::kFingerTree:
      return oracle_monoid<swa::FingerTreeAggregateOp<int, int, int, int>>(
          script, spec, key_mod);
  }
  return {};
}

/// One fuzz iteration: run the shared lattice once per mode, then for
/// every backend compare each query against its dedicated oracle flow —
/// multiset-identical output plus exact per-query lateness counters.
void check_lattice(const std::vector<WindowSpec>& specs, unsigned seed,
                   const char* shape) {
  const int key_mod = 1 + static_cast<int>(seed % 4);
  auto tuples = random_tuples(seed, 200, /*start=*/-50);
  Timestamp max_close = 0;
  for (const WindowSpec& s : specs) {
    max_close = std::max(max_close, s.size + s.lateness);
  }
  const Timestamp flush = tuples.back().ts + max_close + 5;
  const auto script =
      lateish_script(std::move(tuples), /*k=*/8, /*wm_every=*/7, flush, seed);

  const auto replay = shared_replay(script, specs, key_mod);
  const auto monoid = shared_monoid(script, specs, key_mod);

  bool any_output = false;
  for (Backend b : kAllBackends) {
    const auto& shared = is_monoid_backend(b) ? monoid : replay;
    for (std::size_t q = 0; q < specs.size(); ++q) {
      const QueryOutput oracle = run_oracle(b, script, specs[q], key_mod);
      const auto where = [&] {
        return std::string(shape) + " seed " + std::to_string(seed) +
               " backend " + backend_tag(b) + " query " + std::to_string(q) +
               " (WA=" + std::to_string(specs[q].advance) +
               " WS=" + std::to_string(specs[q].size) +
               " L=" + std::to_string(specs[q].lateness) + ")";
      };
      EXPECT_EQ(shared[q].out, oracle.out) << where();
      EXPECT_EQ(shared[q].dropped, oracle.dropped) << where();
      EXPECT_EQ(shared[q].late_updates, oracle.late_updates) << where();
      any_output = any_output || !oracle.out.empty();
    }
  }
  EXPECT_TRUE(any_output) << shape << " seed " << seed
                          << ": vacuous iteration (no oracle output)";
}

// --- Seeded spec-lattice shapes ---

std::vector<WindowSpec> identical_specs(int q_count, std::mt19937& rng) {
  std::uniform_int_distribution<Timestamp> wa(1, 6);
  std::uniform_int_distribution<Timestamp> ws(1, 12);
  std::uniform_int_distribution<Timestamp> lat(0, 8);
  // Same (WA, WS) everywhere — maximal pane sharing — but per-query
  // lateness, so the same pane is purgeable for one query and still
  // admitting re-fires for its twin.
  const WindowSpec base{wa(rng), ws(rng), 0};
  std::vector<WindowSpec> specs;
  for (int q = 0; q < q_count; ++q) {
    specs.push_back({base.advance, base.size, lat(rng)});
  }
  return specs;
}

std::vector<WindowSpec> nested_specs(int q_count, std::mt19937& rng) {
  std::uniform_int_distribution<Timestamp> base(1, 3);
  std::uniform_int_distribution<int> shift(0, 2);
  std::uniform_int_distribution<Timestamp> mult(1, 4);
  std::uniform_int_distribution<Timestamp> lat(0, 8);
  // Every advance is g·2^a and every size a multiple of its advance:
  // the shared pane width stays a useful g (no degeneration to 1).
  const Timestamp g = base(rng);
  std::vector<WindowSpec> specs;
  for (int q = 0; q < q_count; ++q) {
    const Timestamp advance = g << shift(rng);
    specs.push_back({advance, advance * mult(rng), lat(rng)});
  }
  return specs;
}

std::vector<WindowSpec> coprime_specs(int q_count, std::mt19937& rng) {
  const Timestamp advances[] = {1, 2, 3, 5, 7};
  const Timestamp sizes[] = {3, 5, 7, 11, 13};
  std::uniform_int_distribution<int> ai(0, 4);
  std::uniform_int_distribution<int> si(0, 4);
  std::uniform_int_distribution<Timestamp> lat(0, 8);
  // Mutually coprime advances/sizes: the gcd collapses to 1, the
  // worst-case lattice of width-1 panes.
  std::vector<WindowSpec> specs;
  for (int q = 0; q < q_count; ++q) {
    specs.push_back({advances[ai(rng)], sizes[si(rng)], lat(rng)});
  }
  return specs;
}

std::vector<WindowSpec> degenerate_specs(int q_count, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<Timestamp> wa(1, 8);
  std::uniform_int_distribution<Timestamp> small(1, 3);
  std::uniform_int_distribution<Timestamp> hop(1, 5);
  std::uniform_int_distribution<Timestamp> lat(0, 8);
  // Tumbling (WA = WS), sampling (WA > WS: tuples can fall in the gap
  // between instances), and ordinary sliding specs mixed in one lattice.
  std::vector<WindowSpec> specs;
  for (int q = 0; q < q_count; ++q) {
    switch (kind(rng)) {
      case 0: {
        const Timestamp w = wa(rng);
        specs.push_back({w, w, lat(rng)});
        break;
      }
      case 1: {
        const Timestamp size = small(rng);
        specs.push_back({size + hop(rng), size, lat(rng)});
        break;
      }
      default:
        specs.push_back({wa(rng), wa(rng) + small(rng), lat(rng)});
        break;
    }
  }
  return specs;
}

template <typename SpecGen>
void fuzz_shape(const char* shape, SpecGen gen) {
  for (int q_count : {2, 16}) {
    for (unsigned seed : {11u, 12u, 13u, 14u, 15u}) {
      std::mt19937 rng(seed * 131 + static_cast<unsigned>(q_count));
      check_lattice(gen(q_count, rng), seed, shape);
    }
  }
}

TEST(MultiQueryFuzz, IdenticalSpecsPerQueryLateness) {
  fuzz_shape("identical", identical_specs);
}

TEST(MultiQueryFuzz, NestedSpecLattice) {
  fuzz_shape("nested", nested_specs);
}

TEST(MultiQueryFuzz, CoprimeSpecLattice) {
  fuzz_shape("coprime", coprime_specs);
}

TEST(MultiQueryFuzz, DegenerateTumblingAndSamplingSpecs) {
  fuzz_shape("degenerate", degenerate_specs);
}

}  // namespace
}  // namespace aggspes
