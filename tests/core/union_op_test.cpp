// Watermark edge cases of the merging Union (P1), the ones that matter
// when the inputs are operator shards (DESIGN.md § 13): an idle or ended
// input must not stall the min-merge, equal watermarks broadcast by N
// shards must forward once, and barrier alignment must count live ports
// only. Elements are injected port-by-port (Port::receive is synchronous)
// so each assertion pins the exact interleaving that triggers the edge.
#include "core/operators/union_op.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/graph.hpp"
#include "core/operators/sink.hpp"
#include "core/recovery/snapshot.hpp"
#include "core/types.hpp"

namespace aggspes {
namespace {

struct Rig {
  Flow flow;
  UnionOp<int>* u;
  CollectorSink<int>* sink;

  explicit Rig(int inputs) {
    u = &flow.add<UnionOp<int>>(inputs);
    sink = &flow.add<CollectorSink<int>>();
    flow.connect(u->out(), sink->in());
  }

  void send(int port, const Element<int>& e) {
    u->in(port).receive(e);
    flow.drain();
  }
  void wm(int port, Timestamp ts) { send(port, Element<int>{Watermark{ts}}); }
  void end(int port) { send(port, Element<int>{EndOfStream{}}); }
  const std::vector<Timestamp>& wms() const { return sink->watermarks(); }
};

TEST(UnionOp, MergesTuplesInArrivalOrder) {
  Rig r(2);
  r.send(0, Element<int>{Tuple<int>{1, 0, 10}});
  r.send(1, Element<int>{Tuple<int>{2, 0, 20}});
  r.send(0, Element<int>{Tuple<int>{3, 0, 30}});
  ASSERT_EQ(r.sink->tuples().size(), 3u);
  EXPECT_EQ(r.sink->tuples()[0].value, 10);
  EXPECT_EQ(r.sink->tuples()[1].value, 20);
  EXPECT_EQ(r.sink->tuples()[2].value, 30);
}

// N shards broadcast the same periodic watermark (the splitter fans one
// source watermark out to every shard, and every shard forwards it): the
// union must emit each combined value once, not N times.
TEST(UnionOp, DedupesEqualWatermarksFromAllInputs) {
  Rig r(3);
  r.wm(0, 10);
  r.wm(1, 10);
  EXPECT_TRUE(r.wms().empty());  // min over {10, 10, -inf} not advanced
  r.wm(2, 10);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10}));
  r.wm(0, 20);
  r.wm(1, 20);
  r.wm(2, 20);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10, 20}));
  EXPECT_EQ(r.sink->watermark_regressions(), 0);
}

// The stall this file exists for: an input that ends without ever sending
// a watermark (an idle shard with an empty key slice) used to cap the
// min-merge at -inf forever — no watermark ever left the union.
TEST(UnionOp, DoesNotStallWhenAnInputEndsWithoutWatermarks) {
  Rig r(2);
  r.end(1);  // idle shard: ends immediately, no watermark ever
  r.wm(0, 5);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{5}));
  r.send(0, Element<int>{Tuple<int>{7, 0, 1}});
  r.wm(0, 9);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{5, 9}));
  EXPECT_FALSE(r.sink->ended());
  r.end(0);
  EXPECT_TRUE(r.sink->ended());
}

// A slower variant of the same stall: the ending input HAD advanced, and
// its last position was the held minimum. The end must release it.
TEST(UnionOp, EndReleasesTheHeldMinimum) {
  Rig r(2);
  r.wm(0, 50);
  r.wm(1, 10);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10}));
  r.end(1);  // the laggard leaves; the survivor's 50 is now the min
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10, 50}));
  EXPECT_EQ(r.sink->watermark_regressions(), 0);
}

// When the LAST input ends there is no surviving minimum; the union must
// emit end-of-stream, not a +inf sentinel watermark.
TEST(UnionOp, NoSentinelWatermarkWhenAllInputsEnd) {
  Rig r(2);
  r.wm(0, 10);
  r.wm(1, 10);
  r.end(0);
  r.end(1);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10}));
  EXPECT_TRUE(r.sink->ended());
}

// A repaired shard's replay may deliver a second EndOfStream on a port
// that already ended; it must not double-count toward stream completion.
TEST(UnionOp, DuplicateEndOnOnePortDoesNotEndTheStream) {
  Rig r(2);
  r.end(0);
  r.end(0);
  EXPECT_FALSE(r.sink->ended());
  r.end(1);
  EXPECT_TRUE(r.sink->ended());
}

// Monotonicity guard: a watermark arriving on an ended port (out-of-order
// shutdown interleavings) is defensively ignored.
TEST(UnionOp, WatermarkOnEndedPortIsIgnored) {
  Rig r(2);
  r.wm(0, 10);
  r.wm(1, 30);
  r.end(0);  // releases: min over survivors = 30
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10, 30}));
  r.send(0, Element<int>{Watermark{100}});
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{10, 30}));
  EXPECT_EQ(r.sink->watermark_regressions(), 0);
}

// Barrier alignment counts live ports only: after a shard dies (its
// fail-downstream End arrives), the marker its siblings delivered must
// still complete — otherwise no post-crash checkpoint could ever form.
TEST(UnionOp, BarrierAlignsAcrossLivePortsOnly) {
  Rig r(2);
  r.send(0, Element<int>{CheckpointMarker{1}});
  EXPECT_EQ(r.u->completed_barriers(), 0u);  // waiting on port 1
  r.end(1);                                  // port 1 leaves the barrier
  EXPECT_EQ(r.u->completed_barriers(), 1u);
  r.wm(0, 5);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{5}));
}

// Restore must keep excluding ended ports, or the stall comes back after
// recovery.
TEST(UnionOp, SnapshotRoundTripPreservesEndedExclusion) {
  Rig a(2);
  a.end(1);
  a.wm(0, 5);
  SnapshotWriter w;
  a.u->snapshot_to(w);
  const SnapshotWriter::Bytes bytes = w.take();

  Rig b(2);
  SnapshotReader rd(bytes);
  b.u->restore_from(rd);
  b.wm(0, 9);
  EXPECT_EQ(b.wms(), (std::vector<Timestamp>{9}));  // not stalled, no replay of 5
  b.end(0);
  EXPECT_TRUE(b.sink->ended());  // port 1's end was restored
}

TEST(UnionOp, LegacyEmptySnapshotRestoresToFreshState) {
  Rig r(2);
  const SnapshotWriter::Bytes empty;
  SnapshotReader rd(empty);
  r.u->restore_from(rd);
  r.wm(0, 5);
  r.wm(1, 7);
  EXPECT_EQ(r.wms(), (std::vector<Timestamp>{5}));
}

TEST(UnionOp, UnknownSnapshotVersionThrows) {
  Rig r(2);
  SnapshotWriter w;
  w.write_pod(std::uint8_t{99});
  const SnapshotWriter::Bytes bytes = w.take();
  SnapshotReader rd(bytes);
  EXPECT_THROW(r.u->restore_from(rd), SnapshotError);
}

}  // namespace
}  // namespace aggspes
