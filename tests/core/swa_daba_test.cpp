// DabaLite (core/swa/daba.hpp): FIFO-equivalence against TwoStacks and a
// brute-force fold under randomized op sequences, the worst-case combine
// bound that is the structure's whole point (no O(window) flip burst on
// any single operation), and the shared oldest-first wire format that
// lets snapshots move between the two structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/recovery/snapshot.hpp"
#include "core/swa/daba.hpp"
#include "core/swa/two_stacks.hpp"

namespace aggspes::swa {
namespace {

// Non-commutative combine: catches any ordering mistake a sum would hide.
std::string cat(const std::string& a, const std::string& b) { return a + b; }

TEST(DabaLite, MatchesTwoStacksAndBruteForceUnderRandomOps) {
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> op(0, 9);
    std::uniform_int_distribution<int> val(0, 25);
    DabaLite<std::string> daba;
    TwoStacks<std::string> stacks;
    std::deque<std::string> model;
    for (int step = 0; step < 3000; ++step) {
      // Push-biased so the FIFO genuinely grows and shrinks.
      if (op(rng) < 6 || model.empty()) {
        std::string v(1, static_cast<char>('a' + val(rng)));
        daba.push(v, cat);
        stacks.push(v, cat);
        model.push_back(v);
      } else {
        daba.evict(cat);
        stacks.evict(cat);
        model.pop_front();
      }
      ASSERT_EQ(daba.size(), model.size()) << "seed " << seed;
      std::string expect;
      for (const std::string& v : model) expect += v;
      ASSERT_EQ(daba.query_or("", cat), expect) << "seed " << seed;
      ASSERT_EQ(stacks.query_or("", cat), expect) << "seed " << seed;
    }
  }
}

TEST(DabaLite, WorstCaseCombinesPerOpAreConstant) {
  constexpr int kWindow = 32;
  std::uint64_t combines = 0;
  auto counted = [&combines](long a, long b) {
    ++combines;
    return a + b;
  };
  auto max_ops = [&](auto& fifo) {
    std::uint64_t push_max = 0, evict_max = 0, query_max = 0;
    for (int i = 0; i < kWindow; ++i) fifo.push(long{1}, counted);
    for (int step = 0; step < 20 * kWindow; ++step) {
      combines = 0;
      fifo.evict(counted);
      evict_max = std::max(evict_max, combines);
      combines = 0;
      fifo.push(long{1}, counted);
      push_max = std::max(push_max, combines);
      combines = 0;
      EXPECT_EQ(fifo.query_or(long{0}, counted), kWindow);
      query_max = std::max(query_max, combines);
    }
    return std::array<std::uint64_t, 3>{push_max, evict_max, query_max};
  };

  DabaLite<long> daba;
  const auto [d_push, d_evict, d_query] = max_ops(daba);
  // The documented worst cases: push folds once then runs its bonus
  // budget, evict runs the proof-critical budget, query folds three
  // parts.
  EXPECT_LE(d_push, DabaLite<long>::kPushSteps + 1);
  EXPECT_LE(d_evict, DabaLite<long>::kEvictSteps);
  EXPECT_LE(d_query, 2u);

  // The amortized structure pays for the same slide with an O(window)
  // flip on single evicts — the spike DabaLite exists to remove.
  TwoStacks<long> stacks;
  const auto [s_push, s_evict, s_query] = max_ops(stacks);
  EXPECT_GE(s_evict, static_cast<std::uint64_t>(kWindow - 1));
  EXPECT_GT(s_evict, d_evict);
  (void)s_push;
  (void)s_query;
}

TEST(DabaLite, RebuildNeverLeavesFrontEmptyWhileNonEmpty) {
  // Adversarial drain: grow to trigger a freeze, then evict straight
  // through the rebuild. The incremental flip must complete before the
  // old front runs out (the 4m >= 2m + 1 arithmetic in the header).
  for (int n : {1, 2, 3, 5, 8, 16, 33, 64, 101}) {
    DabaLite<long> daba;
    for (int i = 0; i < n; ++i) daba.push(long{i}, std::plus<long>{});
    long expect = static_cast<long>(n) * (n - 1) / 2;
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(daba.query_or(long{0}, std::plus<long>{}), expect);
      daba.evict(std::plus<long>{});
      expect -= i;
    }
    EXPECT_TRUE(daba.empty());
    EXPECT_EQ(daba.query_or(long{-1}, std::plus<long>{}), -1);
  }
}

TEST(DabaLite, SnapshotRoundTripsAndPortsToTwoStacks) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> val(0, 25);
  DabaLite<std::string> daba;
  for (int i = 0; i < 40; ++i) {
    daba.push(std::string(1, static_cast<char>('a' + val(rng))), cat);
    if (i % 3 == 0) daba.evict(cat);
  }
  const std::string expect = daba.query_or("", cat);

  SnapshotWriter w;
  daba.save(w);
  const auto bytes = w.take();

  DabaLite<std::string> daba2;
  SnapshotReader r1(bytes);
  daba2.load(r1, cat);
  EXPECT_EQ(daba2.query_or("", cat), expect);
  EXPECT_EQ(daba2.size(), daba.size());

  // Same wire format as TwoStacks: a snapshot restores into either.
  TwoStacks<std::string> stacks;
  SnapshotReader r2(bytes);
  stacks.load(r2, cat);
  EXPECT_EQ(stacks.query_or("", cat), expect);

  SnapshotWriter w2;
  stacks.save(w2);
  const auto bytes2 = w2.take();
  DabaLite<std::string> daba3;
  SnapshotReader r3(bytes2);
  daba3.load(r3, cat);
  EXPECT_EQ(daba3.query_or("", cat), expect);
}

TEST(KeyCacheLru, EvictsLeastRecentlyTouchedBeyondBound) {
  KeyCacheLru<int, int> lru;
  lru.set_max(2);
  lru.touch(1) = 10;
  lru.touch(2) = 20;
  lru.touch(1) = 11;  // 1 is now most recent
  lru.touch(3) = 30;  // evicts 2
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.evictions(), 1u);
  EXPECT_EQ(lru.find(2), nullptr);
  ASSERT_NE(lru.find(1), nullptr);
  EXPECT_EQ(*lru.find(1), 11);
  ASSERT_NE(lru.find(3), nullptr);
  // The high-water mark is taken after insert, before the evict that
  // restores the bound — so it can exceed max by one.
  EXPECT_EQ(lru.peak_size(), 3u);

  lru.reset_diagnostics();
  EXPECT_EQ(lru.evictions(), 0u);
  EXPECT_EQ(lru.peak_size(), lru.size());

  // max = 0 means unbounded.
  KeyCacheLru<int, int> unbounded;
  for (int i = 0; i < 100; ++i) unbounded.touch(i) = i;
  EXPECT_EQ(unbounded.size(), 100u);
  EXPECT_EQ(unbounded.evictions(), 0u);
}

}  // namespace
}  // namespace aggspes::swa
