// Direct unit tests of the WindowMachine (the state core shared by A, A+,
// A++ and the dedicated Join).
#include "core/operators/window_machine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace aggspes {
namespace {

struct Fired {
  Timestamp l;
  int key;
  std::size_t n;
  bool update;
  friend bool operator==(const Fired&, const Fired&) = default;
};

class MachineFixture : public ::testing::Test {
 protected:
  MachineFixture()
      : machine_(WindowSpec{.advance = 10, .size = 10, .lateness = 5},
                 [](const int& v) { return v % 2; }) {}

  WindowMachine<int, int>::FireFn recorder() {
    return [this](Timestamp l, const int& key,
                  const std::vector<Tuple<int>>& items, bool update) {
      fired_.push_back({l, key, items.size(), update});
    };
  }

  Tuple<int> tup(Timestamp ts, int v) { return {ts, 0, v}; }

  WindowMachine<int, int> machine_;
  std::vector<Fired> fired_;
};

TEST_F(MachineFixture, FiresOncePerKeyOnAdvance) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.add(tup(2, 3), kMinTimestamp, fire);
  machine_.add(tup(3, 4), kMinTimestamp, fire);
  EXPECT_TRUE(fired_.empty());
  machine_.advance(10, fire);
  ASSERT_EQ(fired_.size(), 2u);  // keys 0 and 1
  EXPECT_EQ(machine_.fired_instances(), 2u);
}

TEST_F(MachineFixture, AdvanceIsIdempotent) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.advance(10, fire);
  machine_.advance(12, fire);  // same instance, still within lateness
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(MachineFixture, LateAdmissionRefiresAsUpdate) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.advance(12, fire);  // closes [0,10); purge at 15
  machine_.add(tup(2, 2), 12, fire);
  ASSERT_EQ(fired_.size(), 2u);
  EXPECT_TRUE(fired_[1].update);
  EXPECT_EQ(fired_[1].n, 2u);
  EXPECT_EQ(machine_.late_updates(), 1u);
}

TEST_F(MachineFixture, LateBeyondHorizonDropped) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.advance(15, fire);  // 10 + L(5) <= 15: purgeable
  machine_.add(tup(2, 2), 15, fire);
  EXPECT_EQ(fired_.size(), 1u);
  EXPECT_EQ(machine_.dropped_late(), 1u);
}

TEST_F(MachineFixture, PurgeReleasesState) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.add(tup(11, 2), kMinTimestamp, fire);
  EXPECT_EQ(machine_.open_instances(), 2u);
  machine_.advance(15, fire);  // [0,10) purgeable, [10,20) closed-not-purged
  EXPECT_EQ(machine_.open_instances(), 1u);
  machine_.advance(25, fire);
  EXPECT_EQ(machine_.open_instances(), 0u);
}

TEST_F(MachineFixture, FlushFiresEverythingUnfired) {
  auto fire = recorder();
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.add(tup(11, 3), kMinTimestamp, fire);
  machine_.flush(fire);
  EXPECT_EQ(fired_.size(), 2u);
  EXPECT_EQ(machine_.open_instances(), 0u);
  // Flush after advance only fires what the advance did not.
}

TEST_F(MachineFixture, AddedHookSeesEachInsertion) {
  auto fire = recorder();
  std::vector<std::pair<Timestamp, std::size_t>> added;
  auto hook = [&](Timestamp l, const int&,
                  const std::vector<Tuple<int>>& items) {
    added.emplace_back(l, items.size());
  };
  machine_.add(tup(1, 2), kMinTimestamp, fire, hook);
  machine_.add(tup(2, 2), kMinTimestamp, fire, hook);
  ASSERT_EQ(added.size(), 2u);
  EXPECT_EQ(added[0], (std::pair<Timestamp, std::size_t>{0, 1}));
  EXPECT_EQ(added[1], (std::pair<Timestamp, std::size_t>{0, 2}));
}

TEST_F(MachineFixture, AddedHookNotCalledForDroppedTuples) {
  auto fire = recorder();
  int hook_calls = 0;
  auto hook = [&](Timestamp, const int&, const std::vector<Tuple<int>>&) {
    ++hook_calls;
  };
  machine_.advance(15, fire);
  machine_.add(tup(1, 2), 15, fire, hook);  // dropped (purgeable)
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(machine_.dropped_late(), 1u);
}

TEST(WindowMachineSliding, TupleEntersEveryOverlappingInstance) {
  WindowMachine<int, int> m(WindowSpec{.advance = 5, .size = 15},
                            [](const int&) { return 0; });
  std::vector<Timestamp> fired_at;
  WindowMachine<int, int>::FireFn fire =
      [&](Timestamp l, const int&, const std::vector<Tuple<int>>&, bool) {
        fired_at.push_back(l);
      };
  m.add({12, 0, 1}, kMinTimestamp, fire);
  m.advance(100, fire);
  EXPECT_EQ(fired_at, (std::vector<Timestamp>{0, 5, 10}));
}

TEST_F(MachineFixture, LateProbeIsRateLimited) {
  auto fire = recorder();
  std::vector<LateEvent> seen;
  machine_.set_late_probe([&](const LateEvent& e) { seen.push_back(e); },
                          /*every=*/3);
  machine_.add(tup(1, 2), kMinTimestamp, fire);
  machine_.advance(15, fire);  // [0,10) past its lateness horizon
  for (int i = 0; i < 7; ++i) machine_.add(tup(2, 2), 15, fire);
  EXPECT_EQ(machine_.dropped_late(), 7u);
  ASSERT_EQ(seen.size(), 3u);  // events 0, 3, 6
  EXPECT_TRUE(seen[0].dropped);
  EXPECT_EQ(seen[0].instance, 0);
  EXPECT_EQ(seen[0].tuple_ts, 2);
  EXPECT_EQ(seen[0].watermark, 15);
  EXPECT_EQ(machine_.late_probe().observed(), 7u);
}

TEST(WindowMachineStamp, MaxStampHelper) {
  std::vector<Tuple<int>> items{{0, 5, 1}, {1, 9, 2}, {2, 7, 3}};
  EXPECT_EQ(max_stamp(items), 9u);
  EXPECT_EQ(max_stamp<int>({}), 0u);
}

}  // namespace
}  // namespace aggspes
