// Tests for shared-nothing key-by parallelism (§ 2.2): a logical stateful
// operator deployed as N physical instances must produce exactly the same
// results as one instance, because tuples sharing a key always meet in the
// same instance and watermarks are broadcast.
#include "core/operators/key_partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/hashing.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Reading {
  int sensor;
  int value;
  friend bool operator==(const Reading&, const Reading&) = default;
};

using SumAgg = AggregateOp<Reading, std::pair<int, int>, int>;

std::vector<Tuple<Reading>> make_input() {
  std::vector<Tuple<Reading>> in;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    in.push_back({ts, 0, {static_cast<int>(ts) % 7, static_cast<int>(ts)}});
  }
  return in;
}

/// Runs a logical "sum per sensor over tumbling 20-tick windows" operator
/// with `instances` physical copies and returns the merged output multiset.
std::multiset<std::pair<Timestamp, std::pair<int, int>>> run_partitioned(
    int instances) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      instances, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  auto& sink = flow.add<CollectorSink<std::pair<int, int>>>();
  for (int i = 0; i < instances; ++i) {
    auto& agg = flow.add<SumAgg>(
        WindowSpec{.advance = 20, .size = 20},
        [](const Reading& r) { return r.sensor; },
        [](const WindowView<Reading, int>& w)
            -> std::optional<std::pair<int, int>> {
          int sum = 0;
          for (const auto& t : w.items) sum += t.value.value;
          return std::make_pair(w.key, sum);
        });
    flow.connect(split.out(i), agg.in());
    flow.connect(agg.out(), sink.in());
  }
  flow.run();
  std::multiset<std::pair<Timestamp, std::pair<int, int>>> out;
  for (const auto& t : sink.tuples()) out.emplace(t.ts, t.value);
  return out;
}

TEST(KeySplitter, AllParallelismsProduceIdenticalResults) {
  auto reference = run_partitioned(1);
  EXPECT_FALSE(reference.empty());
  for (int p : {2, 3, 4}) {
    EXPECT_EQ(run_partitioned(p), reference) << "instances=" << p;
  }
}

TEST(KeySplitter, SameKeyAlwaysSameInstance) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      3, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  // Each sensor key appears in exactly one partition.
  std::set<int> seen;
  for (auto* s : sinks) {
    std::set<int> keys;
    for (const auto& t : s->tuples()) keys.insert(t.value.sensor);
    for (int k : keys) {
      EXPECT_TRUE(seen.insert(k).second) << "key " << k << " split";
    }
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(KeySplitter, WatermarksBroadcastToAllInstances) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      3, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  for (auto* s : sinks) {
    EXPECT_EQ(s->watermarks(), sinks[0]->watermarks());
    EXPECT_TRUE(s->ended());
    EXPECT_EQ(s->late_tuples(), 0);
  }
}

TEST(RoundRobinSplitter, DistributesEvenlyAndBroadcastsControl) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<RoundRobinSplitter<Reading>>(4);
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 4; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  std::size_t total = 0;
  for (auto* s : sinks) {
    EXPECT_EQ(s->tuples().size(), 25u);  // 100 / 4, exact round robin
    EXPECT_TRUE(s->ended());
    total += s->tuples().size();
  }
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace aggspes
