// Tests for shared-nothing key-by parallelism (§ 2.2): a logical stateful
// operator deployed as N physical instances must produce exactly the same
// results as one instance, because tuples sharing a key always meet in the
// same instance and watermarks are broadcast.
#include "core/operators/key_partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/hashing.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Reading {
  int sensor;
  int value;
  friend bool operator==(const Reading&, const Reading&) = default;
};

using SumAgg = AggregateOp<Reading, std::pair<int, int>, int>;

std::vector<Tuple<Reading>> make_input() {
  std::vector<Tuple<Reading>> in;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    in.push_back({ts, 0, {static_cast<int>(ts) % 7, static_cast<int>(ts)}});
  }
  return in;
}

/// Runs a logical "sum per sensor over tumbling 20-tick windows" operator
/// with `instances` physical copies and returns the merged output multiset.
std::multiset<std::pair<Timestamp, std::pair<int, int>>> run_partitioned(
    int instances) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      instances, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  auto& sink = flow.add<CollectorSink<std::pair<int, int>>>();
  for (int i = 0; i < instances; ++i) {
    auto& agg = flow.add<SumAgg>(
        WindowSpec{.advance = 20, .size = 20},
        [](const Reading& r) { return r.sensor; },
        [](const WindowView<Reading, int>& w)
            -> std::optional<std::pair<int, int>> {
          int sum = 0;
          for (const auto& t : w.items) sum += t.value.value;
          return std::make_pair(w.key, sum);
        });
    flow.connect(split.out(i), agg.in());
    flow.connect(agg.out(), sink.in());
  }
  flow.run();
  std::multiset<std::pair<Timestamp, std::pair<int, int>>> out;
  for (const auto& t : sink.tuples()) out.emplace(t.ts, t.value);
  return out;
}

TEST(KeySplitter, AllParallelismsProduceIdenticalResults) {
  auto reference = run_partitioned(1);
  EXPECT_FALSE(reference.empty());
  for (int p : {2, 3, 4}) {
    EXPECT_EQ(run_partitioned(p), reference) << "instances=" << p;
  }
}

TEST(KeySplitter, SameKeyAlwaysSameInstance) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      3, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  // Each sensor key appears in exactly one partition.
  std::set<int> seen;
  for (auto* s : sinks) {
    std::set<int> keys;
    for (const auto& t : s->tuples()) keys.insert(t.value.sensor);
    for (int k : keys) {
      EXPECT_TRUE(seen.insert(k).second) << "key " << k << " split";
    }
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(KeySplitter, WatermarksBroadcastToAllInstances) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      3, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  for (auto* s : sinks) {
    EXPECT_EQ(s->watermarks(), sinks[0]->watermarks());
    EXPECT_TRUE(s->ended());
    EXPECT_EQ(s->late_tuples(), 0);
  }
}

// The payload-hash contract (key_partition.hpp): the route is a pure
// function of the key's hash — identical tuples co-locate (Theorem 1) —
// and it goes through shard_of_hash, so any component can predict it.
TEST(KeySplitter, RouteIsAPureFunctionOfTheKeyHash) {
  Flow flow;
  auto& split = flow.add<KeySplitter<Reading, int>>(
      5, [](const Reading& r) { return r.sensor; });
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 5; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  // Same key, interleaved with others, repeated: always the same output.
  for (int rep = 0; rep < 3; ++rep) {
    for (int k = 0; k < 20; ++k) {
      split.in().receive(Element<Reading>{Tuple<Reading>{rep, 0, {k, rep}}});
    }
  }
  flow.drain();
  for (int k = 0; k < 20; ++k) {
    const std::size_t expect = shard_of_hash(std::hash<int>{}(k), 5);
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      int here = 0;
      for (const auto& t : sinks[i]->tuples()) {
        if (t.value.sensor == k) ++here;
      }
      EXPECT_EQ(here, i == expect ? 3 : 0) << "key " << k << " shard " << i;
    }
  }
}

// Routing counters: per-output tuple counts, surfaced as per-shard
// diagnostics, must match what actually arrived downstream.
TEST(KeySplitter, RoutingCountersMatchDeliveredTuples) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      3, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  std::uint64_t total = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(split.routed(i), sinks[static_cast<std::size_t>(i)]->tuples().size());
    total += split.routed(i);
  }
  EXPECT_EQ(total, 100u);
  split.reset_diagnostics();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(split.routed(i), 0u);
}

// Skew: one hot key concentrates on exactly one shard (that is the
// co-location contract doing its job — a hot key CANNOT be spread), while
// the idle shards still drain: broadcast watermarks and end-of-stream
// keep arriving, so downstream windows fire and the union never stalls.
TEST(KeySplitter, HotKeyLandsOnOneShardWhileIdleShardsDrain) {
  constexpr int kHot = 7;
  const std::size_t hot_shard = shard_of_hash(std::hash<int>{}(kHot), 4);
  Flow flow;
  std::vector<Tuple<Reading>> in;
  for (Timestamp ts = 0; ts < 200; ++ts) {
    in.push_back({ts, 0, {kHot, static_cast<int>(ts)}});
  }
  auto& src = flow.add<TimedSource<Reading>>(in, 10, 230);
  auto& split = flow.add<KeySplitter<Reading, int>>(
      4, [](const Reading& r) { return r.sensor; });
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 4; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == hot_shard) {
      EXPECT_EQ(sinks[i]->tuples().size(), 200u);
      EXPECT_EQ(split.routed(static_cast<int>(i)), 200u);
    } else {
      // Idle but draining: zero tuples, yet full watermark cadence and a
      // clean end-of-stream.
      EXPECT_TRUE(sinks[i]->tuples().empty());
      EXPECT_EQ(sinks[i]->watermarks(), sinks[hot_shard]->watermarks());
      EXPECT_TRUE(sinks[i]->ended());
    }
  }
}

// The splitmix64 finalizer matters: std::hash<integral> is the identity,
// so raw hash % N would route consecutive int keys round-robin (key % N)
// — an arithmetic pattern, not a hash spread. The mixed route must not
// degenerate to key % N, and must still spread reasonably.
TEST(KeySplitter, MixedHashDoesNotExposeRawKeyArithmetic) {
  constexpr int kShards = 4;
  int identity_pattern = 0;
  std::vector<int> per_shard(kShards, 0);
  for (int k = 0; k < 1000; ++k) {
    const std::size_t s = shard_of_hash(std::hash<int>{}(k), kShards);
    ++per_shard[s];
    if (s == static_cast<std::size_t>(k % kShards)) ++identity_pattern;
  }
  // Unmixed routing would give 1000 matches; a mixed route agrees with
  // k % N only by chance (~250 of 1000).
  EXPECT_LT(identity_pattern, 500);
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(per_shard[s], 150) << "shard " << s << " starved";
  }
}

// Checkpoint codec v2 round-trip plus the v1 (stateless splitter, empty
// bytes) migration.
TEST(KeySplitter, SnapshotRoundTripAndLegacyMigration) {
  KeySplitter<Reading, int> split(3, [](const Reading& r) { return r.sensor; });
  for (int k = 0; k < 30; ++k) {
    split.in().receive(Element<Reading>{Tuple<Reading>{0, 0, {k, k}}});
  }
  SnapshotWriter w;
  split.snapshot_to(w);
  const SnapshotWriter::Bytes bytes = w.take();

  KeySplitter<Reading, int> restored(3,
                                     [](const Reading& r) { return r.sensor; });
  SnapshotReader r(bytes);
  restored.restore_from(r);
  std::uint64_t total = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(restored.routed(i), split.routed(i));
    total += restored.routed(i);
  }
  EXPECT_EQ(total, 30u);

  // v1 migration: a pre-sharding checkpoint recorded empty bytes.
  KeySplitter<Reading, int> legacy(3, [](const Reading& r) { return r.sensor; });
  const SnapshotWriter::Bytes none;
  SnapshotReader empty(none);
  legacy.restore_from(empty);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(legacy.routed(i), 0u);

  // Mismatched output count is a wiring bug, not a migration case.
  KeySplitter<Reading, int> wrong(4, [](const Reading& r) { return r.sensor; });
  SnapshotReader again(bytes);
  EXPECT_THROW(wrong.restore_from(again), SnapshotError);
}

TEST(RoundRobinSplitter, DistributesEvenlyAndBroadcastsControl) {
  Flow flow;
  auto& src = flow.add<TimedSource<Reading>>(make_input(), 10, 140);
  auto& split = flow.add<RoundRobinSplitter<Reading>>(4);
  flow.connect(src.out(), split.in());
  std::vector<CollectorSink<Reading>*> sinks;
  for (int i = 0; i < 4; ++i) {
    auto& s = flow.add<CollectorSink<Reading>>();
    flow.connect(split.out(i), s.in());
    sinks.push_back(&s);
  }
  flow.run();
  std::size_t total = 0;
  for (auto* s : sinks) {
    EXPECT_EQ(s->tuples().size(), 25u);  // 100 / 4, exact round robin
    EXPECT_TRUE(s->ended());
    total += s->tuples().size();
  }
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace aggspes
