// End-to-end checks of the micro-batched channel path (DESIGN.md § 16):
// a ThreadedFlow with batching on (blocks of kElementBlockCapacity) must
// be output-identical to the same flow with batch_block = 1 (per-element,
// the pre-batch runtime) through block-aware operators (Map, Filter, the
// monoid Aggregate), across watermarks, checkpoint markers and barrier
// alignment — a tuple run never spans a control element — and channels
// with armed fault injectors must silently fall back to per-element
// delivery. Also the § 10 rider: shedding at the Embed operator keeps
// exact shed accounting (every emitted tuple is admitted-or-shed exactly
// once at the machine).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "aggbased/flatmap.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"
#include "core/recovery/fault_injection.hpp"
#include "core/runtime/overload.hpp"
#include "core/runtime/threaded_runtime.hpp"
#include "core/swa/monoid_aggregate.hpp"
#include "harness/sustainable.hpp"

namespace aggspes {
namespace {

/// n tuples with a watermark every `wm_every` and optional checkpoint
/// markers at the given tuple indices.
std::vector<Element<int>> script_with(int n, int wm_every,
                                      std::vector<int> markers_at = {}) {
  std::vector<Element<int>> s;
  std::uint64_t next_marker = 1;
  std::size_t mi = 0;
  for (int i = 0; i < n; ++i) {
    s.push_back(Tuple<int>{Timestamp(i / 3), 0, i});
    if ((i + 1) % wm_every == 0) {
      s.push_back(Watermark{Timestamp(i / 3)});
    }
    if (mi < markers_at.size() && markers_at[mi] == i) {
      s.push_back(CheckpointMarker{next_marker++});
      ++mi;
    }
  }
  s.push_back(Watermark{Timestamp(n)});
  s.push_back(EndOfStream{});
  return s;
}

struct PipeOut {
  std::multiset<std::pair<Timestamp, int>> tuples;
  std::vector<Timestamp> watermarks;
  std::uint64_t barriers{0};
  std::uint64_t agg_dropped{0};
  std::uint64_t agg_fired{0};
};

/// src → Map(*3) → Filter(even) → monoid sum Aggregate → sink, at the
/// given channel batch size.
PipeOut run_pipeline(const std::vector<Element<int>>& script,
                     std::size_t batch_block) {
  ThreadedFlow flow;
  flow.set_batch_block(batch_block);
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& map = flow.add<MapOp<int, int>>([](const int& v) { return v * 3; });
  auto& filt =
      flow.add<FilterOp<int>>([](const int& v) { return v % 2 == 0; });
  auto& agg = flow.add<swa::MonoidAggregateOp<int, int, int, int>>(
      WindowSpec{.advance = 5, .size = 10, .lateness = 3},
      [](const int& v) { return v % 4; }, swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa)
          -> std::optional<int> { return wa.agg; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), map, map.in());
  flow.connect(map, map.out(), filt, filt.in());
  flow.connect(filt, filt.out(), agg, agg.in());
  flow.connect(agg, agg.out(), sink, sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.watermark_regressions(), 0);
  return {sink.multiset(), sink.watermarks(), agg.completed_barriers(),
          agg.machine().dropped_late(), agg.machine().fired_instances()};
}

TEST(ChannelBlock, BatchedPipelineMatchesPerElement) {
  const auto script = script_with(30000, 50);
  PipeOut scalar = run_pipeline(script, 1);
  PipeOut batched = run_pipeline(script, kElementBlockCapacity);
  ASSERT_GT(scalar.tuples.size(), 0u);
  EXPECT_EQ(batched.tuples, scalar.tuples);
  EXPECT_EQ(batched.watermarks, scalar.watermarks);
  EXPECT_EQ(batched.agg_dropped, scalar.agg_dropped);
  EXPECT_EQ(batched.agg_fired, scalar.agg_fired);
}

TEST(ChannelBlock, OddBatchSizesMatchToo) {
  // Block sizes that don't divide the queue capacity exercise partial
  // push_n/pop_n progress and wrap-around on every refill.
  const auto script = script_with(8000, 33);
  PipeOut scalar = run_pipeline(script, 1);
  for (std::size_t b : {2u, 7u, 65u, 1000u}) {
    PipeOut batched = run_pipeline(script, b);
    EXPECT_EQ(batched.tuples, scalar.tuples) << "batch_block " << b;
    EXPECT_EQ(batched.watermarks, scalar.watermarks) << "batch_block " << b;
  }
}

TEST(ChannelBlock, MarkersNeverRideInsideABlock) {
  // Checkpoint markers interleaved with the tuple stream: every operator
  // completes every barrier (the marker always travels the per-element
  // path, splitting any tuple run around it), and outputs stay identical.
  const auto script = script_with(12000, 40, {100, 5000, 11999});
  PipeOut scalar = run_pipeline(script, 1);
  PipeOut batched = run_pipeline(script, kElementBlockCapacity);
  EXPECT_EQ(scalar.barriers, 3u);
  EXPECT_EQ(batched.barriers, 3u);
  EXPECT_EQ(batched.tuples, scalar.tuples);
  EXPECT_EQ(batched.watermarks, scalar.watermarks);
}

TEST(ChannelBlock, BarrierAlignmentHoldsMidBlock) {
  // Two sources into one 2-port Aggregate. Source A's marker arrives with
  // thousands of its tuples still staged in the consumer-side scratch; the
  // channel must hold the post-marker remainder until B's marker aligns
  // the barrier. Batched and per-element runs must agree on outputs and
  // complete exactly one barrier (a hold bug deadlocks → watchdog trips).
  auto make_script = [](int n, int marker_at, std::uint64_t id) {
    std::vector<Element<int>> s;
    for (int i = 0; i < n; ++i) {
      s.push_back(Tuple<int>{Timestamp(i / 2), 0, i});
      if (i == marker_at) s.push_back(CheckpointMarker{id});
      if ((i + 1) % 64 == 0) s.push_back(Watermark{Timestamp(i / 2)});
    }
    s.push_back(Watermark{Timestamp(n)});
    s.push_back(EndOfStream{});
    return s;
  };
  const auto sa = make_script(6000, 700, 1);
  const auto sb = make_script(6000, 5200, 1);

  auto run = [&](std::size_t batch_block) {
    ThreadedFlow flow;
    flow.set_batch_block(batch_block);
    auto& a = flow.add<ScriptSource<int>>(sa);
    auto& b = flow.add<ScriptSource<int>>(sb);
    auto& agg = flow.add<AggregateOp<int, int, int>>(
        WindowSpec{.advance = 8, .size = 8, .lateness = 0},
        [](const int& v) { return v % 2; },
        [](const WindowView<int, int>& w) -> std::optional<int> {
          int s = 0;
          for (const auto& t : w.items) s += t.value;
          return s;
        },
        /*regular_inputs=*/2);
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(a, a.out(), agg, agg.in(0));
    flow.connect(b, b.out(), agg, agg.in(1));
    flow.connect(agg, agg.out(), sink, sink.in());
    flow.run();
    EXPECT_EQ(agg.completed_barriers(), 1u);
    return sink.multiset();
  };
  const auto scalar = run(1);
  const auto batched = run(kElementBlockCapacity);
  ASSERT_GT(scalar.size(), 0u);
  EXPECT_EQ(batched, scalar);
}

TEST(ChannelBlock, FaultArmedChannelsFallBackToPerElementDelivery) {
  // An installed injector makes fault accounting per-delivery, so armed
  // channels must bypass the block path entirely — and still match the
  // unarmed run element-for-element (the scheduled fault is a benign
  // 1 ms delay).
  const auto script = script_with(5000, 50);
  PipeOut clean = run_pipeline(script, kElementBlockCapacity);

  ThreadedFlow flow;
  flow.set_batch_block(kElementBlockCapacity);
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& map = flow.add<MapOp<int, int>>([](const int& v) { return v * 3; });
  auto& filt =
      flow.add<FilterOp<int>>([](const int& v) { return v % 2 == 0; });
  auto& agg = flow.add<swa::MonoidAggregateOp<int, int, int, int>>(
      WindowSpec{.advance = 5, .size = 10, .lateness = 3},
      [](const int& v) { return v % 4; }, swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa)
          -> std::optional<int> { return wa.agg; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), map, map.in());
  flow.connect(map, map.out(), filt, filt.in());
  flow.connect(filt, filt.out(), agg, agg.in());
  flow.connect(agg, agg.out(), sink, sink.in());

  FaultInjector faults(0);
  faults.add_event({.kind = FaultKind::kDelay,
                    .attempt = 0,
                    .edge = 1,
                    .at_delivery = 100,
                    .param_ms = 1});
  flow.install_faults(faults);
  faults.begin_attempt(0);
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.multiset(), clean.tuples);
  EXPECT_EQ(sink.watermarks(), clean.watermarks);
}

// --- § 10 rider: shed at the Embed operator ---------------------------

TEST(ChannelBlock, EmbedShedAccountingIsExactUnderBatching) {
  // Shedder gating the Embed machine's add(): every tuple the source
  // emits is admitted-or-shed exactly once there, on the block path as on
  // the scalar one — shed() + admitted() must equal the script's tuple
  // count exactly, and the same seeded decision stream gives identical
  // outputs at any batch size.
  // timed_script keeps the watermark cadence C1-consistent and flushes in
  // `period` steps at the end (the unfold loop drains one watermark round
  // at a time — a single giant final jump would strand it).
  const int n = 20000;
  std::vector<Tuple<int>> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(Tuple<int>{Timestamp(i / 4), 0, i % 13});
  }
  const auto script = timed_script(tuples, /*period=*/8, /*flush_to=*/5100);

  OverloadMonitor monitor(OverloadThresholds{.pressured_occupancy = 0.0,
                                             .overloaded_occupancy = 2.0});
  monitor.observe({}, 0, kMinTimestamp);  // pinned kPressured

  auto run = [&](std::size_t batch_block, std::uint64_t* shed,
                 std::uint64_t* admitted) {
    ThreadedFlow flow;
    flow.set_batch_block(batch_block);
    Shedder shedder({.policy = ShedPolicy::kRandomP,
                     .p_pressured = 0.3,
                     .seed = 99},
                    &monitor);
    auto& src = flow.add<ScriptSource<int>>(script);
    AggBasedFlatMap<int, int> op(
        flow,
        [](const int& v) { return std::vector<int>(v % 3, v); },
        /*lateness=*/10);
    op.embed().machine().set_shedder(&shedder);
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(src, src.out(), op.in_node(), op.in());
    flow.connect(op.out_node(), op.out(), sink, sink.in());
    flow.run();
    *shed = shedder.shed();
    *admitted = shedder.admitted();
    return sink.multiset();
  };

  std::uint64_t shed1 = 0, adm1 = 0, shedB = 0, admB = 0;
  const auto scalar = run(1, &shed1, &adm1);
  const auto batched = run(kElementBlockCapacity, &shedB, &admB);
  EXPECT_EQ(shed1 + adm1, static_cast<std::uint64_t>(n));
  EXPECT_EQ(shedB + admB, static_cast<std::uint64_t>(n));
  EXPECT_EQ(shedB, shed1);  // same seeded stream, one admit per tuple
  EXPECT_GT(shed1, 0u);
  EXPECT_EQ(batched, scalar);
}

TEST(ChannelBlock, HarnessShedAtEmbedReportsExactCounts) {
  // The RunConfig::shed_at_embed knob end-to-end: thresholds that classify
  // any sample as overloaded plus p_overloaded = 1.0 shed (nearly) every
  // tuple at the Embed machine — the monitor starts kHealthy until the
  // watchdog's first sample, so a short healthy prefix may slip through —
  // and the run still completes with exact attribution in RunResult.
  harness::RunConfig cfg;
  cfg.rate = 20000;
  cfg.duration_s = 0.3;
  cfg.warmup_s = 0.05;
  cfg.cooldown_s = 0.02;
  cfg.shed = {.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0};
  cfg.overload = {.pressured_occupancy = -1.0, .overloaded_occupancy = -1.0};
  cfg.shed_at_embed = true;
  harness::RunResult r = harness::run_fm_t<int, int, WindowMachine>(
      harness::Impl::kAggBased, cfg,
      [](std::uint64_t i) { return static_cast<int>(i % 7); },
      [](const int& v) { return std::vector<int>{v}; });
  EXPECT_GT(r.shed_count, 0u);
  EXPECT_GT(r.shed_ratio, 0.5);
  EXPECT_LE(r.shed_ratio, 1.0);
  EXPECT_EQ(r.health, "overloaded");
}

}  // namespace
}  // namespace aggspes
