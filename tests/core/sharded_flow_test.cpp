// Sharded equivalence property suite (ctest label: sharded). Deploying a
// Table-1 window aggregate as N key-partitioned shards behind the
// splitter/union pair (DESIGN.md § 13) must not change WHAT is computed:
// for every backend — buffering, monoid two-stacks, DABA, finger tree —
// the N-shard output is element-set-equal to an unsharded oracle, for
// every N, across seeded out-of-order scripts with genuine late drops.
// Only watermark-relative ORDER may differ (shards fire key slices
// independently between two broadcast watermarks), which is why outputs
// compare as (ts, value) multisets — the same tolerance the backend
// equivalence suites use for unordered_map fire order.
#include "core/runtime/sharded/sharded_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/runtime/threaded_runtime.hpp"
#include "core/swa/monoid_aggregate.hpp"

namespace aggspes {
namespace {

constexpr int kKeys = 7;
const WindowSpec kSpec{.advance = 4, .size = 10, .lateness = 5};

int key_of(const int& v) { return v % kKeys; }

std::vector<Tuple<int>> random_tuples(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 200);
  std::vector<Tuple<int>> v;
  Timestamp ts = -30;  // instances straddle zero
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

/// Locally shuffled script with watermarks trailing the running max by a
/// small slack: some tuples arrive late-within-L (re-fires), some beyond
/// (drops). Because the splitter broadcasts every watermark to every
/// shard, each shard makes the identical lateness decision the oracle
/// makes for that key.
std::vector<Element<int>> lateish_script(std::vector<Tuple<int>> tuples,
                                         unsigned seed) {
  std::mt19937 rng(seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + 6));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  std::uniform_int_distribution<Timestamp> slack(0, 4);
  const Timestamp flush =
      tuples.back().ts + kSpec.size + kSpec.lateness + 5;
  std::vector<Element<int>> script;
  Timestamp max_ts = kMinTimestamp;
  Timestamp last_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    script.push_back(tuples[i]);
    max_ts = std::max(max_ts, tuples[i].ts);
    if ((i + 1) % 7 == 0) {
      const Timestamp w = max_ts - slack(rng);
      if (w > last_wm) {
        script.push_back(Watermark{w});
        last_wm = w;
      }
    }
  }
  script.push_back(Watermark{flush});
  script.push_back(EndOfStream{});
  return script;
}

template <typename OpT>
ShardEndpoints<int, int> endpoints(OpT& op) {
  ShardEndpoints<int, int> ep;
  ep.in_node = &op;
  ep.in = &op.in();
  ep.out_node = &op;
  ep.out = &op.out();
  ep.nodes = {&op};
  return ep;
}

/// The four Table-1 window backends under test, each as a shard factory
/// (callable on Flow and ThreadedFlow alike — the repair path rebuilds
/// shards single-threaded).
auto buffering_factory() {
  return [](auto& f, int) -> ShardEndpoints<int, int> {
    auto& op = f.template add<AggregateOp<int, int, int>>(
        kSpec, key_of, [](const WindowView<int, int>& w) -> std::optional<int> {
          int s = 0;
          for (const auto& t : w.items) s += t.value;
          return s;
        });
    return endpoints(op);
  };
}

template <typename OpT>
auto monoid_factory() {
  return [](auto& f, int) -> ShardEndpoints<int, int> {
    auto& op = f.template add<OpT>(
        kSpec, key_of, swa::sum_monoid<int>(),
        [](const int&, const swa::WindowAggregate<int>& wa)
            -> std::optional<int> { return wa.agg; });
    return endpoints(op);
  };
}

using Multiset = std::multiset<std::pair<Timestamp, int>>;

/// Unsharded oracle: the factory's op alone on the deterministic
/// scheduler.
template <typename FactoryT>
Multiset oracle_run(const std::vector<Element<int>>& script,
                    FactoryT&& factory) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  ShardEndpoints<int, int> ep = factory(flow, 0);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), *ep.in);
  flow.connect(*ep.out, sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  return sink.multiset();
}

template <typename FactoryT>
Multiset sharded_run(const std::vector<Element<int>>& script, int shards,
                     FactoryT&& factory, std::uint64_t expect_routed) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  typename ShardedFlow<int, int, int>::Options opts;
  opts.key_fn = key_of;
  ShardedFlow<int, int, int> sf(flow, shards, opts, factory);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), sf.in());
  flow.connect(sf.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.watermark_regressions(), 0);

  // Routing diagnostics must account for every input tuple exactly once,
  // and the splitter's counters must agree with the ingress counters.
  std::uint64_t routed = 0;
  for (int s = 0; s < shards; ++s) {
    EXPECT_EQ(sf.splitter().routed(s), sf.ingress(s).routed());
    routed += sf.ingress(s).routed();
  }
  EXPECT_EQ(routed, expect_routed);
  const auto stats = sf.shard_stats();
  EXPECT_EQ(stats.size(), static_cast<std::size_t>(shards));
  return sink.multiset();
}

std::uint64_t tuple_count(const std::vector<Element<int>>& script) {
  std::uint64_t n = 0;
  for (const auto& e : script) {
    if (std::holds_alternative<Tuple<int>>(e)) ++n;
  }
  return n;
}

template <typename FactoryT>
void check_backend(FactoryT&& factory, const char* backend) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const auto script = lateish_script(random_tuples(seed, 250), seed);
    const std::uint64_t n = tuple_count(script);
    const Multiset oracle = oracle_run(script, factory);
    ASSERT_GT(oracle.size(), 0u) << backend;
    for (int shards : {1, 2, 4, 8}) {
      EXPECT_EQ(sharded_run(script, shards, factory, n), oracle)
          << backend << " N=" << shards << " seed=" << seed;
    }
  }
}

TEST(ShardedEquivalence, BufferingBackendMatchesOracleAtEveryWidth) {
  check_backend(buffering_factory(), "buffering");
}

TEST(ShardedEquivalence, MonoidBackendMatchesOracleAtEveryWidth) {
  check_backend(monoid_factory<swa::MonoidAggregateOp<int, int, int, int>>(),
                "monoid");
}

TEST(ShardedEquivalence, DabaBackendMatchesOracleAtEveryWidth) {
  check_backend(monoid_factory<swa::DabaAggregateOp<int, int, int, int>>(),
                "daba");
}

TEST(ShardedEquivalence, FingerTreeBackendMatchesOracleAtEveryWidth) {
  check_backend(
      monoid_factory<swa::FingerTreeAggregateOp<int, int, int, int>>(),
      "finger-tree");
}

// The same property on the threaded runtime: per-shard monitors attach
// (one scope per shard), the watchdog samples them, and the merged output
// is still oracle-equal. One backend suffices — the threading layer is
// backend-agnostic.
TEST(ShardedEquivalence, ThreadedShardedRunMatchesOracle) {
  const auto script = lateish_script(random_tuples(11, 250), 11);
  const auto factory =
      monoid_factory<swa::MonoidAggregateOp<int, int, int, int>>();
  const Multiset oracle = oracle_run(script, factory);

  ThreadedFlow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  ShardedFlow<int, int, int>::Options opts;
  opts.key_fn = key_of;
  ShardedFlow<int, int, int> sf(flow, 4, opts, factory);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), sf.in_node(), sf.in());
  flow.connect(sf.out_node(), sf.out(), sink, sink.in());
  flow.run();

  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.watermark_regressions(), 0);
  EXPECT_EQ(sink.multiset(), oracle);
  for (int s = 0; s < 4; ++s) {
    ASSERT_NE(sf.monitor(s), nullptr);
    EXPECT_EQ(sf.monitor(s)->worst(), FlowHealth::kHealthy);
  }
}

// Empty slices are the union-stall trap: with more shards than live keys,
// some shards see no tuples at all, yet their broadcast watermarks and
// ends must keep the merge flowing and the output oracle-equal.
TEST(ShardedEquivalence, MoreShardsThanKeysLeavesIdleShardsHarmless) {
  std::vector<Element<int>> script;
  for (int i = 0; i < 40; ++i) {
    script.push_back(Tuple<int>{i, 0, kKeys * i});  // key 0 only
    if (i % 5 == 4) script.push_back(Watermark{i});
  }
  script.push_back(Watermark{100});
  script.push_back(EndOfStream{});

  const auto factory = buffering_factory();
  const Multiset oracle = oracle_run(script, factory);
  ASSERT_GT(oracle.size(), 0u);
  EXPECT_EQ(sharded_run(script, 8, factory, tuple_count(script)), oracle);
}

}  // namespace
}  // namespace aggspes
