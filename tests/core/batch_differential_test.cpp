// Batch-vs-scalar differential suite (DESIGN.md § 16): the micro-batched
// ingest path — SlicedEngine::add_block + the columnar kernels — must be
// BYTE-identical to per-tuple add() for every arithmetic monoid, over both
// FIFO policies (two-stacks and DABA Lite), across randomized schedules
// with reorder, admitted-late re-fires, dropped-late tuples, watermark
// interleaves and random block splits. Diagnostics (occupancy, peaks,
// dropped_late, late_updates, fired_instances, shed/admitted counts) must
// be counter-identical too. Aggregates are compared as raw bit patterns,
// so a -0.0/+0.0 or reassociation drift in a double sum fails the suite.
//
// Also pins the kernel legality story (satellite checks): the
// kHasBatchAbsorb trait is true exactly for the monoid FIFO family (the
// replay policy and the out-of-order finger tree have no absorb_run and
// always run scalar), the stock arithmetic monoids carry their kind +
// kCommutative tags, and untagged monoids never enter a kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <tuple>
#include <vector>

#include "core/runtime/overload.hpp"
#include "core/swa/backends.hpp"
#include "core/swa/batch_kernels.hpp"
#include "core/swa/daba.hpp"
#include "core/swa/finger_tree.hpp"
#include "core/swa/monoid.hpp"
#include "core/swa/monoid_machine.hpp"
#include "core/swa/sliced_machine.hpp"

namespace aggspes {
namespace {

using swa::Monoid;
using swa::MonoidKind;

/// Raw bit pattern of an aggregate — the comparison currency of the whole
/// suite (operator== would call -0.0 and +0.0 the same value).
template <typename T>
std::uint64_t bits_of(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    static_assert(sizeof(T) <= sizeof(std::uint64_t));
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(v));
    return b;
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

/// (instance, key, agg bits, count, stamp, is_update) — everything a fire
/// hands downstream.
using FireRec =
    std::tuple<Timestamp, int, std::uint64_t, std::uint64_t, std::uint64_t,
               bool>;

struct Diag {
  std::uint64_t dropped_late{0};
  std::uint64_t late_updates{0};
  std::uint64_t fired_instances{0};
  std::uint64_t occupancy{0};
  std::uint64_t peak_occupancy{0};
  std::uint64_t peak_panes{0};
  std::uint64_t shed{0};
  std::uint64_t admitted{0};

  bool operator==(const Diag&) const = default;
};

struct RunOut {
  std::vector<FireRec> fires;
  Diag diag;
};

/// One script event: a tuple arrival or a watermark advance.
template <typename In>
struct Ev {
  bool is_wm{false};
  Tuple<In> t{};
  Timestamp w{kMinTimestamp};
};

/// Locally-shuffled tuples with trailing watermarks, as in the sliced
/// equivalence suite: some shuffled tuples arrive late-but-admitted
/// (re-fires), some beyond the lateness bound (drops).
template <typename In>
std::vector<Ev<In>> random_script(unsigned seed, int n, const WindowSpec& spec) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 2);
  std::uniform_int_distribution<int> val(-40, 40);
  std::vector<Tuple<In>> tuples;
  Timestamp ts = -30;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    tuples.push_back({ts, static_cast<std::uint64_t>(rng() % 1000),
                      static_cast<In>(val(rng))});
  }
  std::uniform_int_distribution<std::size_t> k(0, 10);
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + k(rng)));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  std::uniform_int_distribution<Timestamp> slack(0, 5);
  std::vector<Ev<In>> script;
  Timestamp max_ts = kMinTimestamp;
  Timestamp last_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    script.push_back({false, tuples[i], kMinTimestamp});
    max_ts = std::max(max_ts, tuples[i].ts);
    if ((i + 1) % 9 == 0) {
      const Timestamp w = max_ts - slack(rng);
      if (w > last_wm) {
        script.push_back({true, {}, w});
        last_wm = w;
      }
    }
  }
  const Timestamp flush =
      tuples.empty() ? 0 : max_ts + spec.size + spec.lateness + 5;
  script.push_back({true, {}, flush});
  return script;
}

ShedConfig shed_cfg(unsigned seed) {
  ShedConfig cfg;
  cfg.policy = ShedPolicy::kRandomP;
  cfg.p_pressured = 0.25;
  cfg.seed = seed;
  return cfg;
}

/// Runs `script` through one engine. `block_rng_seed == 0` takes the
/// per-tuple scalar path (the oracle); otherwise tuple runs between
/// watermarks are fed through add_block in random-sized sub-blocks
/// spanning 1 .. past both the kernel chunk (256) and the channel block.
template <typename Policy, typename In, typename Agg>
RunOut run_engine(const Monoid<In, Agg>& m, const std::vector<Ev<In>>& script,
                  const WindowSpec& spec, int n_keys, unsigned block_rng_seed,
                  const Shedder* shed_template = nullptr,
                  const OverloadMonitor* monitor = nullptr) {
  swa::SlicedEngine<In, int, Policy> eng(
      spec, [n_keys](const In& v) { return static_cast<int>(v) % n_keys; },
      Policy(m));
  std::optional<Shedder> shedder;
  if (shed_template != nullptr) {
    shedder.emplace(shed_template->config(), monitor);
    eng.set_shedder(&*shedder);
  }
  RunOut out;
  auto fire = [&](Timestamp l, const int& key,
                  const swa::WindowAggregate<Agg>& r, bool update) {
    out.fires.emplace_back(l, key, bits_of(r.agg), r.count, r.stamp, update);
  };
  std::mt19937 brng(block_rng_seed);
  std::uniform_int_distribution<std::size_t> bsz(1, 300);
  std::vector<Tuple<In>> run;
  Timestamp w = kMinTimestamp;
  auto drain = [&] {
    std::size_t i = 0;
    while (i < run.size()) {
      const std::size_t n = std::min(bsz(brng), run.size() - i);
      eng.add_block(run.data() + i, n, w, fire);
      i += n;
    }
    run.clear();
  };
  for (const Ev<In>& ev : script) {
    if (ev.is_wm) {
      if (block_rng_seed != 0) drain();
      eng.advance(ev.w, fire);
      w = ev.w;
    } else if (block_rng_seed == 0) {
      eng.add(ev.t, w, fire);
    } else {
      run.push_back(ev.t);
    }
  }
  if (block_rng_seed != 0) drain();
  out.diag = {eng.dropped_late(),
              eng.late_updates(),
              eng.fired_instances(),
              eng.occupancy(),
              eng.peak_occupancy(),
              eng.peak_panes(),
              shedder ? shedder->shed() : 0,
              shedder ? shedder->admitted() : 0};
  eng.flush(fire);
  return out;
}

/// Instance-key fire order can differ only within unordered_map iteration;
/// a stable sort on (l, key) keeps each (l, key)'s re-fire sequence intact
/// while making the comparison deterministic.
void canonicalize(std::vector<FireRec>& v) {
  std::stable_sort(v.begin(), v.end(), [](const FireRec& a, const FireRec& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) <
           std::tie(std::get<0>(b), std::get<1>(b));
  });
}

template <typename In, typename Agg>
void check_both_policies(const Monoid<In, Agg>& m, const char* what,
                         bool with_shedder) {
  using TwoStacksP = swa::MonoidPolicy<In, Agg, int>;
  using DabaP = swa::DabaPolicy<In, Agg, int>;
  const std::vector<WindowSpec> specs = {
      {.advance = 4, .size = 10, .lateness = 5},
      {.advance = 5, .size = 5, .lateness = 3},
      {.advance = 3, .size = 17, .lateness = 8},
  };
  // A monitor pinned at kPressured so RandomP shedders actually shed with
  // their seeded deterministic stream (no live flow needed).
  OverloadMonitor monitor(OverloadThresholds{.pressured_occupancy = 0.0,
                                             .overloaded_occupancy = 2.0});
  monitor.observe({}, 0, kMinTimestamp);
  for (std::size_t si = 0; si < specs.size(); ++si) {
    for (unsigned seed : {11u, 22u, 33u}) {
      for (int n_keys : {1, 3}) {
        auto script = random_script<In>(seed + static_cast<unsigned>(si) * 97,
                                        900, specs[si]);
        std::optional<Shedder> tmpl;
        if (with_shedder) tmpl.emplace(shed_cfg(seed), &monitor);
        const Shedder* st = tmpl ? &*tmpl : nullptr;
        const OverloadMonitor* mon = tmpl ? &monitor : nullptr;

        RunOut scalar = run_engine<TwoStacksP>(m, script, specs[si], n_keys,
                                               /*block_rng_seed=*/0, st, mon);
        RunOut batch = run_engine<TwoStacksP>(m, script, specs[si], n_keys,
                                              seed + 1, st, mon);
        ASSERT_GT(scalar.fires.size(), 0u) << what;
        canonicalize(scalar.fires);
        canonicalize(batch.fires);
        EXPECT_EQ(batch.fires, scalar.fires)
            << what << " two-stacks spec " << si << " seed " << seed
            << " keys " << n_keys;
        EXPECT_EQ(batch.diag, scalar.diag)
            << what << " two-stacks diagnostics spec " << si << " seed "
            << seed;

        // DABA gets its own scalar oracle: batched-vs-scalar must be
        // byte-identical per policy. (Cross-policy equality additionally
        // holds for associative monoids — the swa_equivalence suite pins
        // that — but an untagged non-associative combine may associate
        // differently across FIFO structures, so it is not asserted here.)
        RunOut daba_oracle = run_engine<DabaP>(m, script, specs[si], n_keys,
                                               /*block_rng_seed=*/0, st, mon);
        RunOut daba = run_engine<DabaP>(m, script, specs[si], n_keys,
                                        seed + 2, st, mon);
        canonicalize(daba_oracle.fires);
        canonicalize(daba.fires);
        EXPECT_EQ(daba.fires, daba_oracle.fires)
            << what << " daba spec " << si << " seed " << seed << " keys "
            << n_keys;
        EXPECT_EQ(daba.diag, daba_oracle.diag)
            << what << " daba diagnostics spec " << si << " seed " << seed;
      }
    }
  }
}

TEST(BatchDifferential, SumInt64) {
  check_both_policies(swa::sum_monoid<long long>(), "sum<i64>", false);
}

TEST(BatchDifferential, SumDoubleBitExact) {
  check_both_policies(swa::sum_monoid<double>(), "sum<f64>", false);
}

TEST(BatchDifferential, MinInt64) {
  check_both_policies(swa::min_monoid<long long>(1 << 30), "min<i64>", false);
}

TEST(BatchDifferential, MaxInt64) {
  check_both_policies(swa::max_monoid<long long>(-(1 << 30)), "max<i64>",
                      false);
}

TEST(BatchDifferential, MinMaxDoubleBitExact) {
  check_both_policies(swa::min_monoid<double>(1e30), "min<f64>", false);
  check_both_policies(swa::max_monoid<double>(-1e30), "max<f64>", false);
}

TEST(BatchDifferential, CountOverInt) {
  check_both_policies(swa::count_monoid<int>(), "count", false);
}

TEST(BatchDifferential, UntaggedNonCommutativeMonoidStaysScalarAndMatches) {
  // An order-sensitive fold with no kind tag: add_block may still batch
  // the store, but the fold must run per tuple in sequence — any illegal
  // kernel or reorder shows up as a value mismatch.
  Monoid<int, long long> m{
      0, [](const int& v) { return static_cast<long long>(v); },
      [](const long long& a, const long long& b) { return a * 31 + b; }};
  ASSERT_EQ(m.kind, MonoidKind::kGeneric);
  ASSERT_FALSE(m.commutative);
  check_both_policies(m, "untagged", false);
}

TEST(BatchDifferential, ShedderDecisionStreamIdenticalUnderBatching) {
  // Admission is consulted exactly once per tuple in arrival order on both
  // paths, so the seeded shedder's decision stream — and therefore every
  // shed/admitted counter and every output — is identical.
  check_both_policies(swa::sum_monoid<long long>(), "sum<i64>+shed", true);
  check_both_policies(swa::sum_monoid<double>(), "sum<f64>+shed", true);
}

TEST(BatchKernels, FoldRunMatchesScalarFoldBitForBit) {
  // Kernel-level oracle check across the chunk boundary (255/256/257/513)
  // and the fresh-cell seeding rule, including -0.0 (where seeding from
  // combine(identity, lift) instead of lift would flip a bit).
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> val(-10.0, 10.0);
  for (const std::size_t n : {1u, 2u, 255u, 256u, 257u, 513u}) {
    std::vector<Tuple<double>> ts;
    for (std::size_t i = 0; i < n; ++i) {
      double v = val(rng);
      if (i % 37 == 0) v = -0.0;
      ts.push_back({static_cast<Timestamp>(i), i, v});
    }
    for (const MonoidKind kind :
         {MonoidKind::kSum, MonoidKind::kMin, MonoidKind::kMax}) {
      for (const bool fresh : {true, false}) {
        double scalar_acc = -0.0;
        std::uint64_t scalar_count = fresh ? 0 : 1;
        std::uint64_t scalar_stamp = 7;
        for (const auto& t : ts) {
          const double lifted = t.value;
          if (scalar_count == 0) {
            scalar_acc = lifted;
          } else if (kind == MonoidKind::kSum) {
            scalar_acc = scalar_acc + lifted;
          } else if (kind == MonoidKind::kMin) {
            scalar_acc = std::min(scalar_acc, lifted);
          } else {
            scalar_acc = std::max(scalar_acc, lifted);
          }
          ++scalar_count;
          scalar_stamp = std::max(scalar_stamp, t.stamp);
        }
        double acc = -0.0;
        std::uint64_t stamp = 7;
        const bool used = swa::batch_fold_run(kind, ts.data(), ts.size(),
                                              fresh, acc, stamp);
        if (!swa::kBatchKernelsCompiled) {
          EXPECT_FALSE(used);
          continue;
        }
        ASSERT_TRUE(used);
        EXPECT_EQ(bits_of(acc), bits_of(scalar_acc))
            << "kind " << static_cast<int>(kind) << " n " << n << " fresh "
            << fresh;
        EXPECT_EQ(stamp, scalar_stamp);
      }
    }
    // count: lift == 1, combine == +.
    std::uint64_t cacc = 3;
    std::uint64_t cstamp = 0;
    if (swa::kBatchKernelsCompiled) {
      ASSERT_TRUE(swa::batch_fold_run(MonoidKind::kCount, ts.data(),
                                      ts.size(), /*fresh=*/false, cacc,
                                      cstamp));
      EXPECT_EQ(cacc, 3 + ts.size());
      EXPECT_EQ(cstamp, ts.size() - 1);
    }
  }
}

// --- Kernel legality traits (the satellite assertions) ----------------

// The batched absorb exists exactly on the monoid FIFO family; replay
// (holistic, order-sensitive materialization) and the finger tree (its
// absorb rebalances a tree per tuple) stay scalar by construction.
static_assert(swa::MonoidWindowMachine<int, long long, int>::kHasBatchAbsorb,
              "two-stacks must take the batched ingest path");
static_assert(swa::DabaWindowMachine<int, long long, int>::kHasBatchAbsorb,
              "DABA must take the batched ingest path");
static_assert(!swa::SlicedWindowMachine<int, int>::kHasBatchAbsorb,
              "replay (holistic) must stay on the scalar path");
static_assert(
    !swa::FingerTreeWindowMachine<int, long long, int>::kHasBatchAbsorb,
    "the out-of-order tree must stay on the scalar path");

TEST(BatchKernels, StockMonoidsCarryKindAndCommutativityTags) {
  EXPECT_EQ(swa::sum_monoid<long long>().kind, MonoidKind::kSum);
  EXPECT_EQ(swa::min_monoid<int>(100).kind, MonoidKind::kMin);
  EXPECT_EQ(swa::max_monoid<int>(-100).kind, MonoidKind::kMax);
  EXPECT_EQ(swa::count_monoid<int>().kind, MonoidKind::kCount);
  EXPECT_TRUE(swa::sum_monoid<double>().commutative);
  EXPECT_TRUE(swa::min_monoid<double>(1e9).commutative);
  EXPECT_TRUE(swa::max_monoid<double>(-1e9).commutative);
  EXPECT_TRUE(swa::count_monoid<double>().commutative);
  // A plain declaration promises nothing: no kernel, no reorder license.
  const Monoid<int, int> plain{
      0, [](const int& v) { return v; },
      [](const int& a, const int& b) { return a + b; }};
  EXPECT_EQ(plain.kind, MonoidKind::kGeneric);
  EXPECT_FALSE(plain.commutative);
}

TEST(BatchKernels, NonArithmeticPayloadsAreIneligible) {
  EXPECT_FALSE((swa::kBatchKernelEligible<bool, int>));
  EXPECT_FALSE((swa::kBatchKernelEligible<int, bool>));
  EXPECT_TRUE((swa::kBatchKernelEligible<int, long long>));
  EXPECT_TRUE((swa::kBatchKernelEligible<double, double>));
}

}  // namespace
}  // namespace aggspes
