// Unit tests for watermark combining (§ 2.3, Definition 3).
#include "core/watermark.hpp"

#include <gtest/gtest.h>

namespace aggspes {
namespace {

TEST(WatermarkCombiner, SinglePortTracksLatest) {
  WatermarkCombiner c(1);
  EXPECT_EQ(c.current(), kMinTimestamp);
  EXPECT_TRUE(c.advance(0, 5));
  EXPECT_EQ(c.current(), 5);
  EXPECT_TRUE(c.advance(0, 9));
  EXPECT_EQ(c.current(), 9);
}

TEST(WatermarkCombiner, StaleWatermarksIgnored) {
  WatermarkCombiner c(1);
  EXPECT_TRUE(c.advance(0, 5));
  EXPECT_FALSE(c.advance(0, 5));
  EXPECT_FALSE(c.advance(0, 3));
  EXPECT_EQ(c.current(), 5);
}

TEST(WatermarkCombiner, CombinedIsMinimumAcrossPorts) {
  // § 2.3: W is the smallest among the latest watermark of each input.
  WatermarkCombiner c(2);
  EXPECT_FALSE(c.advance(0, 10));  // port 1 still at -inf
  EXPECT_EQ(c.current(), kMinTimestamp);
  EXPECT_TRUE(c.advance(1, 4));
  EXPECT_EQ(c.current(), 4);
  EXPECT_FALSE(c.advance(0, 12));  // min still governed by port 1
  EXPECT_TRUE(c.advance(1, 7));
  EXPECT_EQ(c.current(), 7);
  EXPECT_TRUE(c.advance(1, 20));  // now port 0 (12) is the minimum
  EXPECT_EQ(c.current(), 12);
}

TEST(WatermarkCombiner, AdvanceReturnsTrueOnlyOnStrictIncrease) {
  WatermarkCombiner c(3);
  c.advance(0, 5);
  c.advance(1, 5);
  EXPECT_FALSE(c.current() > kMinTimestamp);
  EXPECT_TRUE(c.advance(2, 5));
  EXPECT_EQ(c.current(), 5);
  EXPECT_FALSE(c.advance(2, 6));  // min still 5
}

TEST(WatermarkCombiner, PortWatermarkAccessors) {
  WatermarkCombiner c(2);
  c.advance(0, 8);
  EXPECT_EQ(c.port_watermark(0), 8);
  EXPECT_EQ(c.port_watermark(1), kMinTimestamp);
  EXPECT_EQ(c.ports(), 2);
}

TEST(WatermarkCombiner, ZeroPortCombinerNeverAdvances) {
  WatermarkCombiner c(0);
  EXPECT_EQ(c.current(), kMinTimestamp);
}

}  // namespace
}  // namespace aggspes
