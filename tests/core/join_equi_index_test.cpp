// Differential suite for the indexed equi-join probe path (`ctest -L
// differential`): a JoinOp with declare_equi must stay *element-identical*
// — outputs in emission order, late-drop counts, watermark behaviour — to
// both the unindexed JoinOp and the BufferingJoinOp oracle, while doing
// strictly fewer predicate invocations (it only tests the matching hash
// bucket). Also covers snapshot restore (the index is derived state,
// rebuilt from the restored pane entries) and collision safety (a weak
// hash may admit non-matches to the bucket; f_P still filters them).
#include "core/operators/join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

#include "core/operators/join_buffering.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/window_machine.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
  friend auto operator<=>(const Ev&, const Ev&) = default;
};

using Pair = std::pair<Ev, Ev>;
using EquiJoin = JoinOp<Ev, Ev, int>;

std::function<int(const Ev&)> by_key() {
  return [](const Ev& e) { return e.key; };
}

// The declared equi attribute: f_P(a, b) ≡ attr(a) == attr(b).
int attr(const Ev& e) { return e.val % 11; }
bool equi_pred(const Ev& a, const Ev& b) { return attr(a) == attr(b); }
std::uint64_t attr_hash(const Ev& e) {
  return static_cast<std::uint64_t>(attr(e));
}

struct Step {
  enum Kind { kLeft, kRight, kWatermark } kind;
  Tuple<Ev> t{};
  Timestamp wm{0};
};

std::vector<Step> random_script(std::mt19937& rng, int n, Timestamp lo,
                                Timestamp hi, Timestamp slack, int n_keys,
                                int disorder) {
  std::uniform_int_distribution<Timestamp> ts_dist(lo, hi);
  std::uniform_int_distribution<int> key_dist(0, n_keys - 1);
  std::uniform_int_distribution<int> side_dist(0, 1);
  std::uniform_int_distribution<int> val_dist(0, 200);
  std::vector<Step> tuples;
  tuples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Step s;
    s.kind = side_dist(rng) ? Step::kLeft : Step::kRight;
    s.t = Tuple<Ev>{ts_dist(rng), 0, Ev{key_dist(rng), val_dist(rng)}};
    tuples.push_back(s);
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const Step& a, const Step& b) { return a.t.ts < b.t.ts; });
  for (int i = 0; i < n; ++i) {
    std::uniform_int_distribution<int> off(0, disorder);
    const int j = std::min(n - 1, i + off(rng));
    std::swap(tuples[static_cast<std::size_t>(i)],
              tuples[static_cast<std::size_t>(j)]);
  }
  std::vector<Step> script;
  script.reserve(tuples.size() * 2);
  Timestamp max_ts = lo;
  Timestamp last_wm = kMinTimestamp;
  for (const Step& s : tuples) {
    script.push_back(s);
    max_ts = std::max(max_ts, s.t.ts);
    const Timestamp wm = max_ts - slack;
    if (wm > last_wm) {
      script.push_back(Step{Step::kWatermark, {}, wm});
      last_wm = wm;
    }
  }
  script.push_back(Step{Step::kWatermark, {}, hi + 1});
  return script;
}

struct Observed {
  std::vector<Tuple<Pair>> outputs;
  std::vector<Timestamp> watermarks;
  std::uint64_t comparisons{0};
  std::uint64_t dropped_late{0};
  bool ended{false};
};

/// `customize(op)` runs before the script (e.g. declare_equi).
template <typename JoinT, typename Customize>
Observed run_script(const std::vector<Step>& script, WindowSpec spec,
                    std::function<bool(const Ev&, const Ev&)> f_p,
                    Customize&& customize) {
  Flow flow;
  auto& op = flow.add<JoinT>(spec, by_key(), by_key(), std::move(f_p));
  customize(op);
  auto& sink = flow.add<CollectorSink<Pair>>();
  flow.connect(op.out(), sink.in());
  for (const Step& s : script) {
    switch (s.kind) {
      case Step::kLeft:
        op.in_left().receive(Element<Ev>{s.t});
        break;
      case Step::kRight:
        op.in_right().receive(Element<Ev>{s.t});
        break;
      case Step::kWatermark:
        op.in_left().receive(Element<Ev>{Watermark{s.wm}});
        op.in_right().receive(Element<Ev>{Watermark{s.wm}});
        break;
    }
    flow.drain();
  }
  op.in_left().receive(Element<Ev>{EndOfStream{}});
  op.in_right().receive(Element<Ev>{EndOfStream{}});
  flow.drain();
  Observed o;
  o.outputs = sink.tuples();
  o.watermarks = sink.watermarks();
  o.comparisons = op.comparisons();
  o.dropped_late = op.dropped_late();
  o.ended = sink.ended();
  return o;
}

void declare(EquiJoin& op) { op.declare_equi(attr_hash, attr_hash); }
void no_op(EquiJoin&) {}
void no_op_buf(BufferingJoinOp<Ev, Ev, int>&) {}

void expect_same_stream(const Observed& a, const Observed& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].ts, b.outputs[i].ts) << i;
    EXPECT_EQ(a.outputs[i].value, b.outputs[i].value) << i;
  }
  EXPECT_EQ(a.watermarks, b.watermarks);
  EXPECT_EQ(a.dropped_late, b.dropped_late);
  EXPECT_TRUE(a.ended);
}

const std::vector<WindowSpec> kSpecs = {
    {.advance = 4, .size = 4},  {.advance = 5, .size = 15},
    {.advance = 4, .size = 10}, {.advance = 7, .size = 9},
    {.advance = 10, .size = 6}, {.advance = 3, .size = 7},
};

TEST(JoinEquiIndex, IndexedProbeIsElementIdenticalAndCheaper) {
  std::mt19937 rng(17);
  for (const WindowSpec& spec : kSpecs) {
    for (int round = 0; round < 3; ++round) {
      auto script = random_script(rng, 200, 0, 120, /*slack=*/6, 3,
                                  /*disorder=*/10);
      auto indexed = run_script<EquiJoin>(script, spec, equi_pred, declare);
      auto linear = run_script<EquiJoin>(script, spec, equi_pred, no_op);
      auto oracle = run_script<BufferingJoinOp<Ev, Ev, int>>(
          script, spec, equi_pred, no_op_buf);
      expect_same_stream(indexed, linear);
      expect_same_stream(indexed, oracle);
      EXPECT_GT(indexed.outputs.size(), 0u) << "vacuous round";
      // The point of the index: with 11 attribute values, the bucket cuts
      // candidates roughly 11x. Strictly fewer is the hard guarantee.
      EXPECT_LT(indexed.comparisons, linear.comparisons);
      EXPECT_EQ(linear.comparisons, oracle.comparisons);
    }
  }
}

TEST(JoinEquiIndex, HashCollisionsCostComparisonsNeverCorrectness) {
  // Degenerate 1-bucket hash: every candidate collides; the indexed path
  // degrades to the linear scan's comparisons but must not change output.
  std::mt19937 rng(29);
  const WindowSpec spec{.advance = 4, .size = 10};
  auto script = random_script(rng, 180, 0, 100, /*slack=*/5, 3,
                              /*disorder=*/8);
  auto weak = run_script<EquiJoin>(script, spec, equi_pred, [](EquiJoin& op) {
    op.declare_equi([](const Ev&) { return std::uint64_t{0}; },
                    [](const Ev&) { return std::uint64_t{0}; });
  });
  auto linear = run_script<EquiJoin>(script, spec, equi_pred, no_op);
  expect_same_stream(weak, linear);
  EXPECT_EQ(weak.comparisons, linear.comparisons);
}

TEST(JoinEquiIndex, IndexRebuildsAcrossSnapshotRestore) {
  std::mt19937 rng(41);
  const WindowSpec spec{.advance = 5, .size = 15};
  auto script = random_script(rng, 160, 0, 90, /*slack=*/6, 3,
                              /*disorder=*/6);
  const auto uninterrupted =
      run_script<EquiJoin>(script, spec, equi_pred, declare);

  for (std::size_t cut : {std::size_t{20}, std::size_t{90}}) {
    SCOPED_TRACE(cut);
    std::vector<Step> prefix(script.begin(),
                             script.begin() + static_cast<long>(cut));
    std::vector<Step> suffix(script.begin() + static_cast<long>(cut),
                             script.end());

    Flow a;
    auto& op_a = a.add<EquiJoin>(spec, by_key(), by_key(), equi_pred);
    declare(op_a);
    auto& sink_a = a.add<CollectorSink<Pair>>();
    a.connect(op_a.out(), sink_a.in());
    for (const Step& s : prefix) {
      if (s.kind == Step::kLeft) {
        op_a.in_left().receive(Element<Ev>{s.t});
      } else if (s.kind == Step::kRight) {
        op_a.in_right().receive(Element<Ev>{s.t});
      } else {
        op_a.in_left().receive(Element<Ev>{Watermark{s.wm}});
        op_a.in_right().receive(Element<Ev>{Watermark{s.wm}});
      }
      a.drain();
    }
    SnapshotWriter op_w, sink_w;
    op_a.snapshot_to(op_w);
    sink_a.snapshot_to(sink_w);
    const auto op_bytes = op_w.take();
    const auto sink_bytes = sink_w.take();

    Flow b;
    auto& op_b = b.add<EquiJoin>(spec, by_key(), by_key(), equi_pred);
    declare(op_b);  // declared before restore: load() must re-index
    auto& sink_b = b.add<CollectorSink<Pair>>();
    b.connect(op_b.out(), sink_b.in());
    SnapshotReader op_r(op_bytes), sink_r(sink_bytes);
    op_b.restore_from(op_r);
    sink_b.restore_from(sink_r);
    for (const Step& s : suffix) {
      if (s.kind == Step::kLeft) {
        op_b.in_left().receive(Element<Ev>{s.t});
      } else if (s.kind == Step::kRight) {
        op_b.in_right().receive(Element<Ev>{s.t});
      } else {
        op_b.in_left().receive(Element<Ev>{Watermark{s.wm}});
        op_b.in_right().receive(Element<Ev>{Watermark{s.wm}});
      }
      b.drain();
    }
    op_b.in_left().receive(Element<Ev>{EndOfStream{}});
    op_b.in_right().receive(Element<Ev>{EndOfStream{}});
    b.drain();

    ASSERT_EQ(sink_b.tuples().size(), uninterrupted.outputs.size());
    for (std::size_t i = 0; i < uninterrupted.outputs.size(); ++i) {
      EXPECT_EQ(sink_b.tuples()[i].ts, uninterrupted.outputs[i].ts) << i;
      EXPECT_EQ(sink_b.tuples()[i].value, uninterrupted.outputs[i].value)
          << i;
    }
  }
}

}  // namespace
}  // namespace aggspes
