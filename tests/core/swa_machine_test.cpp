// Direct unit tests of the sliced window backends: pane geometry, the
// replay engine (SlicedWindowMachine) and the incremental monoid engine
// (MonoidWindowMachine). The typed fixture mirrors window_machine_test so
// both backends prove the same fire semantics as the buffering machine.
#include "core/swa/monoid_machine.hpp"
#include "core/swa/sliced_machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace aggspes::swa {
namespace {

using SlicedM = SlicedWindowMachine<int, int>;
using MonoidM = MonoidWindowMachine<int, int, int>;

template <typename M>
M make_machine(WindowSpec spec) {
  auto key = [](const int& v) { return v % 2; };
  if constexpr (std::is_same_v<M, SlicedM>) {
    return M(spec, key);
  } else {
    return M(spec, key, MonoidPolicy<int, int, int>(sum_monoid<int>()));
  }
}

// The two backends deliver different fire payloads (tuple vector vs
// WindowAggregate); these project both onto cardinality and value sum.
template <typename R>
std::size_t result_count(const R& r) {
  if constexpr (requires { r.count; }) {
    return static_cast<std::size_t>(r.count);
  } else {
    return r.size();
  }
}

template <typename R>
long result_sum(const R& r) {
  if constexpr (requires { r.agg; }) {
    return r.agg;
  } else {
    long s = 0;
    for (const auto& t : r) s += t.value;
    return s;
  }
}

struct Fired {
  Timestamp l;
  int key;
  std::size_t n;
  bool update;
  friend bool operator==(const Fired&, const Fired&) = default;
};

template <typename M>
class SlicedFixture : public ::testing::Test {
 protected:
  SlicedFixture()
      : machine_(make_machine<M>(
            WindowSpec{.advance = 10, .size = 10, .lateness = 5})) {}

  typename M::FireFn recorder() {
    return [this](Timestamp l, const int& key,
                  const typename M::Result& r, bool update) {
      fired_.push_back({l, key, result_count(r), update});
    };
  }

  Tuple<int> tup(Timestamp ts, int v) { return {ts, 0, v}; }

  M machine_;
  std::vector<Fired> fired_;
};

using Backends = ::testing::Types<SlicedM, MonoidM>;
TYPED_TEST_SUITE(SlicedFixture, Backends);

TYPED_TEST(SlicedFixture, FiresOncePerKeyOnAdvance) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.add(this->tup(2, 3), kMinTimestamp, fire);
  this->machine_.add(this->tup(3, 4), kMinTimestamp, fire);
  EXPECT_TRUE(this->fired_.empty());
  this->machine_.advance(10, fire);
  ASSERT_EQ(this->fired_.size(), 2u);  // keys 0 and 1
  EXPECT_EQ(this->machine_.fired_instances(), 2u);
}

TYPED_TEST(SlicedFixture, AdvanceIsIdempotent) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.advance(10, fire);
  this->machine_.advance(12, fire);  // same instance, still within lateness
  EXPECT_EQ(this->fired_.size(), 1u);
}

TYPED_TEST(SlicedFixture, LateAdmissionRefiresAsUpdate) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.advance(12, fire);  // closes [0,10); purge at 15
  this->machine_.add(this->tup(2, 2), 12, fire);
  ASSERT_EQ(this->fired_.size(), 2u);
  EXPECT_TRUE(this->fired_[1].update);
  EXPECT_EQ(this->fired_[1].n, 2u);
  EXPECT_EQ(this->machine_.late_updates(), 1u);
}

TYPED_TEST(SlicedFixture, LateBeyondHorizonDropped) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.advance(15, fire);  // 10 + L(5) <= 15: purgeable
  this->machine_.add(this->tup(2, 2), 15, fire);
  EXPECT_EQ(this->fired_.size(), 1u);
  EXPECT_EQ(this->machine_.dropped_late(), 1u);
}

TYPED_TEST(SlicedFixture, PurgeReleasesState) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.add(this->tup(11, 2), kMinTimestamp, fire);
  EXPECT_EQ(this->machine_.open_instances(), 2u);
  this->machine_.advance(15, fire);  // [0,10) purgeable, [10,20) closed
  EXPECT_EQ(this->machine_.open_instances(), 1u);
  this->machine_.advance(25, fire);
  EXPECT_EQ(this->machine_.open_instances(), 0u);
  EXPECT_EQ(this->machine_.open_panes(), 0u);
}

TYPED_TEST(SlicedFixture, FlushFiresEverythingUnfired) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.add(this->tup(11, 3), kMinTimestamp, fire);
  this->machine_.flush(fire);
  EXPECT_EQ(this->fired_.size(), 2u);
  EXPECT_EQ(this->machine_.open_instances(), 0u);
}

TYPED_TEST(SlicedFixture, FlushAfterAdvanceFiresOnlyRemainder) {
  auto fire = this->recorder();
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.add(this->tup(11, 3), kMinTimestamp, fire);
  this->machine_.advance(10, fire);  // fires [0,10) only
  ASSERT_EQ(this->fired_.size(), 1u);
  this->machine_.flush(fire);
  ASSERT_EQ(this->fired_.size(), 2u);
  EXPECT_EQ(this->fired_[1].l, 10);
}

TYPED_TEST(SlicedFixture, AddedHookSeesEachInsertion) {
  auto fire = this->recorder();
  std::vector<std::pair<Timestamp, std::size_t>> added;
  auto hook = [&](Timestamp l, const int&,
                  const typename TypeParam::Result& r) {
    added.emplace_back(l, result_count(r));
  };
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire, hook);
  this->machine_.add(this->tup(2, 2), kMinTimestamp, fire, hook);
  ASSERT_EQ(added.size(), 2u);
  EXPECT_EQ(added[0], (std::pair<Timestamp, std::size_t>{0, 1}));
  EXPECT_EQ(added[1], (std::pair<Timestamp, std::size_t>{0, 2}));
}

TYPED_TEST(SlicedFixture, AddedHookNotCalledForDroppedTuples) {
  auto fire = this->recorder();
  int hook_calls = 0;
  auto hook = [&](Timestamp, const int&, const typename TypeParam::Result&) {
    ++hook_calls;
  };
  this->machine_.advance(15, fire);
  this->machine_.add(this->tup(1, 2), 15, fire, hook);  // dropped
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(this->machine_.dropped_late(), 1u);
}

TYPED_TEST(SlicedFixture, LateProbeSamplesDropsAndUpdates) {
  auto fire = this->recorder();
  std::vector<LateEvent> seen;
  this->machine_.set_late_probe([&](const LateEvent& e) { seen.push_back(e); },
                                /*every=*/2);
  this->machine_.add(this->tup(1, 2), kMinTimestamp, fire);
  this->machine_.advance(15, fire);  // [0,10) past horizon
  for (int i = 0; i < 4; ++i) this->machine_.add(this->tup(2, 2), 15, fire);
  EXPECT_EQ(this->machine_.dropped_late(), 4u);
  ASSERT_EQ(seen.size(), 2u);  // events 0 and 2 of 4
  EXPECT_TRUE(seen[0].dropped);
  EXPECT_EQ(seen[0].instance, 0);
  EXPECT_EQ(seen[0].watermark, 15);
}

// --- Pane geometry ------------------------------------------------------

TEST(PaneGeometry, GcdWidthAndCounts) {
  const WindowSpec spec{.advance = 4, .size = 10};
  const PaneGeometry g = PaneGeometry::of(spec);
  EXPECT_EQ(g.width, 2);
  EXPECT_EQ(g.panes_per_window(spec), 5);
  EXPECT_EQ(g.panes_per_advance(spec), 2);
}

TEST(PaneGeometry, NegativeTimestampsFloor) {
  const PaneGeometry g{2};
  EXPECT_EQ(g.pane_of(-1), -2);
  EXPECT_EQ(g.pane_of(-2), -2);
  EXPECT_EQ(g.pane_of(-3), -4);
  EXPECT_EQ(g.pane_of(0), 0);
  EXPECT_EQ(g.pane_of(3), 2);
}

// --- Replay-specific: arrival-order materialization ---------------------

TEST(SlicedReplay, MaterializesInArrivalOrderAcrossPanes) {
  // WA=5, WS=15 → pane width 5. Tuples arrive out of event-time order and
  // land in different panes; fire payloads must still be in arrival order,
  // exactly like the buffering machine's item vectors.
  SlicedM m(WindowSpec{.advance = 5, .size = 15},
            [](const int&) { return 0; });
  std::vector<std::vector<int>> payloads;
  SlicedM::FireFn fire = [&](Timestamp, const int&,
                             const std::vector<Tuple<int>>& items, bool) {
    std::vector<int> vals;
    for (const auto& t : items) vals.push_back(t.value);
    payloads.push_back(std::move(vals));
  };
  m.add({12, 0, 1}, kMinTimestamp, fire);
  m.add({3, 0, 2}, kMinTimestamp, fire);
  m.add({8, 0, 3}, kMinTimestamp, fire);
  m.advance(100, fire);
  // Instances [-10,5) … [10,25) fire in order; payloads follow arrival
  // order (value 1 arrived first), not event-time order.
  ASSERT_EQ(payloads.size(), 5u);
  EXPECT_EQ(payloads[0], (std::vector<int>{2}));        // [-10,5)
  EXPECT_EQ(payloads[1], (std::vector<int>{2, 3}));     // [-5,10)
  EXPECT_EQ(payloads[2], (std::vector<int>{1, 2, 3}));  // [0,15)
  EXPECT_EQ(payloads[3], (std::vector<int>{1, 3}));     // [5,20)
  EXPECT_EQ(payloads[4], (std::vector<int>{1}));        // [10,25)
}

TEST(SlicedReplay, TupleStoredOncePerPane) {
  SlicedM m(WindowSpec{.advance = 5, .size = 15},
            [](const int&) { return 0; });
  SlicedM::FireFn fire = [](Timestamp, const int&,
                            const std::vector<Tuple<int>>&, bool) {};
  m.add({12, 0, 1}, kMinTimestamp, fire);  // overlaps 3 instances, 1 pane
  EXPECT_EQ(m.open_panes(), 1u);
  EXPECT_EQ(m.open_instances(), 3u);
}

// --- Monoid-specific: incremental values match a naive recompute --------

TEST(MonoidMachine, SlidingSumsMatchNaiveRecompute) {
  const WindowSpec spec{.advance = 2, .size = 8};
  MonoidM m(spec, [](const int&) { return 0; },
            MonoidPolicy<int, int, int>(sum_monoid<int>()));
  std::map<Timestamp, long> got;
  MonoidM::FireFn fire = [&](Timestamp l, const int&,
                             const WindowAggregate<int>& wa, bool) {
    got[l] = wa.agg;
  };
  std::vector<std::pair<Timestamp, int>> tuples;
  Timestamp w = kMinTimestamp;
  for (Timestamp ts = 0; ts <= 40; ++ts) {
    const int v = static_cast<int>(ts * ts % 23);
    tuples.emplace_back(ts, v);
    m.add({ts, 0, v}, w, fire);
    if (ts % 4 == 3) {
      w = ts;
      m.advance(w, fire);
    }
  }
  m.flush(fire);

  std::map<Timestamp, long> naive;
  for (const auto& [ts, v] : tuples) {
    for (Timestamp l = spec.first_instance(ts); l <= spec.last_instance(ts);
         l += spec.advance) {
      naive[l] += v;
    }
  }
  EXPECT_EQ(got, naive);
}

TEST(MonoidMachine, LateArrivalInvalidatesStacksNotResults) {
  // lateness admits a tuple into an already-evaluated pane; the re-fire
  // and every later in-order fire must still be exact.
  const WindowSpec spec{.advance = 2, .size = 6, .lateness = 10};
  MonoidM m(spec, [](const int&) { return 0; },
            MonoidPolicy<int, int, int>(sum_monoid<int>()));
  std::map<Timestamp, long> last_value;
  MonoidM::FireFn fire = [&](Timestamp l, const int&,
                             const WindowAggregate<int>& wa, bool) {
    last_value[l] = wa.agg;
  };
  for (Timestamp ts = 0; ts < 12; ++ts) m.add({ts, 0, 1}, kMinTimestamp, fire);
  m.advance(10, fire);  // closes instances up to [4,10)
  m.add({5, 0, 100}, 10, fire);  // late into panes already in stacks
  m.advance(18, fire);
  m.flush(fire);
  // Instance [0,6): 6 ones + late 100. [4,10): 6 ones + 100. [6,12): 6.
  EXPECT_EQ(last_value[0], 106);
  EXPECT_EQ(last_value[4], 106);
  EXPECT_EQ(last_value[6], 6);
  EXPECT_EQ(m.late_updates(), 3u);  // instances 0, 2, 4 re-fired
}

TEST(MonoidMachine, NegativeTimestampsMatchBufferingInstanceMath) {
  const WindowSpec spec{.advance = 4, .size = 10};
  MonoidM m(spec, [](const int&) { return 0; },
            MonoidPolicy<int, int, int>(sum_monoid<int>()));
  std::map<Timestamp, long> got;
  MonoidM::FireFn fire = [&](Timestamp l, const int&,
                             const WindowAggregate<int>& wa, bool) {
    got[l] = wa.agg;
  };
  for (Timestamp ts = -13; ts <= 5; ++ts) m.add({ts, 0, 1}, kMinTimestamp, fire);
  m.flush(fire);

  std::map<Timestamp, long> naive;
  for (Timestamp ts = -13; ts <= 5; ++ts) {
    for (Timestamp l = spec.first_instance(ts); l <= spec.last_instance(ts);
         l += spec.advance) {
      naive[l] += 1;
    }
  }
  EXPECT_EQ(got, naive);
}

}  // namespace
}  // namespace aggspes::swa
