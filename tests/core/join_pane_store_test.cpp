// Differential suite for the pane-backed dedicated Join (DESIGN.md § 9):
// the pane-store JoinOp must be *element-identical* — outputs in emission
// order, comparison counts, late-drop counts and watermark behaviour — to
// the per-instance BufferingJoinOp it replaced, across shuffled, late and
// negative-timestamp streams and across pane geometries gcd(WA, WS) ∈
// {1, WA, WS}. Mirrors the style of swa_equivalence_test.cpp.
//
// Also hosts the diagnostics-reset units (LateProbe rate-limit window,
// machine/store occupancy high-water marks) the harness relies on between
// A/B repetitions.
#include "core/operators/join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "core/operators/join_buffering.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/window_machine.hpp"
#include "core/swa/late_probe.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
  friend auto operator<=>(const Ev&, const Ev&) = default;
};

using Pair = std::pair<Ev, Ev>;

std::function<int(const Ev&)> by_key() {
  return [](const Ev& e) { return e.key; };
}

// One element of an interleaved two-sided script. Watermarks advance both
// input ports in lockstep (the combined watermark is their min).
struct Step {
  enum Kind { kLeft, kRight, kWatermark } kind;
  Tuple<Ev> t{};
  Timestamp wm{0};
};

/// Random interleaved script: tuples on both sides with timestamps in
/// [lo, hi] shuffled within a window of `disorder` positions (so some
/// arrive late relative to the trailing watermarks), watermarks trailing
/// `slack` behind the running max timestamp. With slack = 0 many tuples
/// arrive for already-closed instances and must be dropped identically.
std::vector<Step> random_script(std::mt19937& rng, int n, Timestamp lo,
                                Timestamp hi, Timestamp slack, int n_keys,
                                int disorder) {
  std::uniform_int_distribution<Timestamp> ts_dist(lo, hi);
  std::uniform_int_distribution<int> key_dist(0, n_keys - 1);
  std::uniform_int_distribution<int> side_dist(0, 1);
  std::vector<Step> tuples;
  tuples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Step s;
    s.kind = side_dist(rng) ? Step::kLeft : Step::kRight;
    s.t = Tuple<Ev>{ts_dist(rng), 0, Ev{key_dist(rng), i}};
    tuples.push_back(s);
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const Step& a, const Step& b) { return a.t.ts < b.t.ts; });
  // Local shuffle: swap within `disorder` positions to create bounded
  // out-of-orderness without losing the overall time progression.
  for (int i = 0; i < n; ++i) {
    std::uniform_int_distribution<int> off(0, disorder);
    const int j = std::min(n - 1, i + off(rng));
    std::swap(tuples[static_cast<std::size_t>(i)],
              tuples[static_cast<std::size_t>(j)]);
  }
  std::vector<Step> script;
  script.reserve(tuples.size() * 2);
  Timestamp max_ts = lo;
  Timestamp last_wm = kMinTimestamp;
  for (const Step& s : tuples) {
    script.push_back(s);
    max_ts = std::max(max_ts, s.t.ts);
    const Timestamp wm = max_ts - slack;
    if (wm > last_wm) {
      script.push_back(Step{Step::kWatermark, {}, wm});
      last_wm = wm;
    }
  }
  script.push_back(Step{Step::kWatermark, {}, hi + 1});
  return script;
}

struct Observed {
  std::vector<Tuple<Pair>> outputs;  ///< exact emission order
  std::vector<Timestamp> watermarks;
  std::uint64_t comparisons{0};
  std::uint64_t dropped_late{0};
  std::uint64_t peak_stored{0};
  std::uint64_t peak_panes{0};
  bool ended{false};
};

/// Replays `script` through a join of type JoinT wired to a CollectorSink
/// on the deterministic runtime, driving the ports directly so arrival
/// interleaving and lateness are exactly as scripted.
template <typename JoinT>
Observed run_script(const std::vector<Step>& script, WindowSpec spec,
                    std::function<bool(const Ev&, const Ev&)> f_p) {
  Flow flow;
  auto& op = flow.add<JoinT>(spec, by_key(), by_key(), std::move(f_p));
  auto& sink = flow.add<CollectorSink<Pair>>();
  flow.connect(op.out(), sink.in());
  for (const Step& s : script) {
    switch (s.kind) {
      case Step::kLeft:
        op.in_left().receive(Element<Ev>{s.t});
        break;
      case Step::kRight:
        op.in_right().receive(Element<Ev>{s.t});
        break;
      case Step::kWatermark:
        op.in_left().receive(Element<Ev>{Watermark{s.wm}});
        op.in_right().receive(Element<Ev>{Watermark{s.wm}});
        break;
    }
    flow.drain();
  }
  op.in_left().receive(Element<Ev>{EndOfStream{}});
  op.in_right().receive(Element<Ev>{EndOfStream{}});
  flow.drain();
  Observed o;
  o.outputs = sink.tuples();
  o.watermarks = sink.watermarks();
  o.comparisons = op.comparisons();
  o.dropped_late = op.dropped_late();
  o.peak_stored = op.peak_occupancy();
  o.peak_panes = op.peak_panes();
  o.ended = sink.ended();
  return o;
}

void expect_element_identical(const Observed& pane, const Observed& buf,
                              const WindowSpec& spec) {
  ASSERT_EQ(pane.outputs.size(), buf.outputs.size())
      << "WA=" << spec.advance << " WS=" << spec.size;
  for (std::size_t i = 0; i < pane.outputs.size(); ++i) {
    EXPECT_EQ(pane.outputs[i].ts, buf.outputs[i].ts) << i;
    EXPECT_EQ(pane.outputs[i].value, buf.outputs[i].value) << i;
  }
  EXPECT_EQ(pane.watermarks, buf.watermarks);
  EXPECT_EQ(pane.comparisons, buf.comparisons);
  EXPECT_EQ(pane.dropped_late, buf.dropped_late);
  EXPECT_TRUE(pane.ended);
  EXPECT_TRUE(buf.ended);
}

// Pane geometries: tumbling (g = WS = WA), WA-divides-WS (g = WA),
// coprime (g = 1), mixed gcd, and WS < WA (inter-instance gaps).
const std::vector<WindowSpec> kSpecs = {
    {.advance = 4, .size = 4},   {.advance = 5, .size = 15},
    {.advance = 4, .size = 10},  {.advance = 7, .size = 9},
    {.advance = 10, .size = 6},  {.advance = 3, .size = 7},
};

TEST(JoinPaneDifferential, InOrderStreamsAreElementIdentical) {
  std::mt19937 rng(11);
  auto pred = [](const Ev& a, const Ev& b) { return a.val <= b.val + 40; };
  for (const WindowSpec& spec : kSpecs) {
    auto script = random_script(rng, 160, 0, 80, /*slack=*/0, 4,
                                /*disorder=*/0);
    auto pane = run_script<JoinOp<Ev, Ev, int>>(script, spec, pred);
    auto buf = run_script<BufferingJoinOp<Ev, Ev, int>>(script, spec, pred);
    expect_element_identical(pane, buf, spec);
  }
}

TEST(JoinPaneDifferential, ShuffledAndLateStreamsAreElementIdentical) {
  std::mt19937 rng(23);
  auto pred = [](const Ev& a, const Ev& b) { return (a.val ^ b.val) % 3 != 0; };
  for (const WindowSpec& spec : kSpecs) {
    for (int round = 0; round < 3; ++round) {
      auto script = random_script(rng, 200, 0, 120, /*slack=*/6, 3,
                                  /*disorder=*/10);
      auto pane = run_script<JoinOp<Ev, Ev, int>>(script, spec, pred);
      auto buf = run_script<BufferingJoinOp<Ev, Ev, int>>(script, spec, pred);
      expect_element_identical(pane, buf, spec);
      EXPECT_GT(pane.comparisons, 0u) << "vacuous round";
    }
  }
}

TEST(JoinPaneDifferential, NegativeTimestampsAreElementIdentical) {
  std::mt19937 rng(31);
  auto pred = [](const Ev&, const Ev&) { return true; };
  for (const WindowSpec& spec : kSpecs) {
    auto script = random_script(rng, 150, -61, 37, /*slack=*/4, 3,
                                /*disorder=*/6);
    auto pane = run_script<JoinOp<Ev, Ev, int>>(script, spec, pred);
    auto buf = run_script<BufferingJoinOp<Ev, Ev, int>>(script, spec, pred);
    expect_element_identical(pane, buf, spec);
    EXPECT_GT(pane.outputs.size(), 0u);
  }
}

TEST(JoinPaneDifferential, AggressiveLatenessDropsIdentically) {
  // Watermarks race ahead of the stream: most tuples land in closed
  // instances and both implementations must count every drop identically.
  std::mt19937 rng(47);
  auto pred = [](const Ev&, const Ev&) { return true; };
  for (const WindowSpec& spec : kSpecs) {
    auto script = random_script(rng, 150, 0, 100, /*slack=*/0, 2,
                                /*disorder=*/25);
    auto pane = run_script<JoinOp<Ev, Ev, int>>(script, spec, pred);
    auto buf = run_script<BufferingJoinOp<Ev, Ev, int>>(script, spec, pred);
    expect_element_identical(pane, buf, spec);
    EXPECT_GT(pane.dropped_late, 0u) << "vacuous: nothing arrived late";
  }
}

TEST(JoinPaneStore, SingleCopyStorageBeatsPerInstanceFanOut) {
  // With WS = 5·WA every tuple overlaps 5 instances: the buffering join
  // holds ~5 copies at peak while the pane store holds one.
  std::mt19937 rng(5);
  const WindowSpec spec{.advance = 4, .size = 20};
  auto pred = [](const Ev&, const Ev&) { return false; };
  auto script = random_script(rng, 300, 0, 150, /*slack=*/30, 1,
                              /*disorder=*/0);
  auto pane = run_script<JoinOp<Ev, Ev, int>>(script, spec, pred);
  auto buf = run_script<BufferingJoinOp<Ev, Ev, int>>(script, spec, pred);
  EXPECT_GT(pane.peak_stored, 0u);
  // Fan-out ratio WS/WA = 5: demand at least 3x to keep the bound robust
  // against boundary effects.
  EXPECT_GE(buf.peak_stored, 3 * pane.peak_stored);
}

TEST(JoinPaneStore, PurgeReleasesEverything) {
  swa::JoinPaneStore<Ev, Ev, int> store(WindowSpec{.advance = 4, .size = 10});
  for (int i = 0; i < 20; ++i) {
    store.add_left(i % 3, Tuple<Ev>{Timestamp(i), 0, Ev{i % 3, i}});
    store.add_right(i % 3, Tuple<Ev>{Timestamp(i), 0, Ev{i % 3, -i}});
  }
  EXPECT_EQ(store.occupancy(), 40u);
  EXPECT_GT(store.open_panes(), 0u);
  store.purge_closed(1000);
  EXPECT_EQ(store.occupancy(), 0u);
  EXPECT_EQ(store.open_panes(), 0u);
  EXPECT_GE(store.peak_occupancy(), 40u);
  store.reset_diagnostics();
  EXPECT_EQ(store.peak_occupancy(), 0u);
  EXPECT_EQ(store.peak_panes(), 0u);
}

TEST(LateProbeReset, RestartsTheRateLimitWindow) {
  int sampled = 0;
  LateProbe probe;
  probe.set([&sampled](const LateEvent&) { ++sampled; }, /*every=*/4);
  for (int i = 0; i < 6; ++i) probe({0, 0, 0, true});
  EXPECT_EQ(sampled, 2);  // events 0 and 4
  EXPECT_EQ(probe.observed(), 6u);
  probe.reset();
  EXPECT_EQ(probe.observed(), 0u);
  probe({0, 0, 0, true});  // first post-reset event is sampled again
  EXPECT_EQ(sampled, 3);
}

TEST(WindowMachineDiagnostics, OccupancyTracksBufferedTuplesAndResets) {
  WindowMachine<int, int> m(WindowSpec{.advance = 2, .size = 6},
                            [](const int&) { return 0; });
  auto fire = [](Timestamp, const int&, const std::vector<Tuple<int>>&,
                 bool) {};
  // Each tuple lands in WS/WA = 3 instances -> 3 buffered copies.
  m.add(Tuple<int>{10, 0, 1}, kMinTimestamp, fire);
  EXPECT_EQ(m.occupancy(), 3u);
  m.add(Tuple<int>{11, 0, 2}, kMinTimestamp, fire);
  EXPECT_EQ(m.occupancy(), 6u);
  EXPECT_EQ(m.peak_occupancy(), 6u);
  m.advance(1000, fire);  // closes and purges everything (lateness = 0)
  EXPECT_EQ(m.occupancy(), 0u);
  EXPECT_EQ(m.peak_occupancy(), 6u);  // high-water mark survives the purge
  m.reset_diagnostics();
  EXPECT_EQ(m.peak_occupancy(), 0u);
  EXPECT_EQ(m.peak_panes(), 0u);
  EXPECT_EQ(m.late_probe().observed(), 0u);
}

}  // namespace
}  // namespace aggspes
