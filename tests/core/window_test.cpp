// Unit tests for window-instance math (§ 2.1 of the paper).
#include "core/window.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace aggspes {
namespace {

TEST(FloorDiv, MatchesMathematicalFloor) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(-1, 5), -1);
  EXPECT_EQ(floor_div(4, 5), 0);
  EXPECT_EQ(floor_div(5, 5), 1);
}

TEST(WindowSpec, TumblingAssignsExactlyOneInstance) {
  WindowSpec spec{.advance = 10, .size = 10};
  EXPECT_TRUE(spec.tumbling());
  for (Timestamp ts : {0, 1, 9, 10, 19, 20, 137}) {
    auto ls = spec.instances(ts);
    ASSERT_EQ(ls.size(), 1u) << "ts=" << ts;
    EXPECT_EQ(ls[0], (ts / 10) * 10);
  }
}

TEST(WindowSpec, DeltaTumblingInstanceEqualsTimestamp) {
  // Lemma 1: with WA = WS = δ, γ.l = t.τ and outputs share the input's τ.
  WindowSpec spec{.advance = kDelta, .size = kDelta};
  for (Timestamp ts : {Timestamp{0}, Timestamp{1}, Timestamp{12345},
                       Timestamp{-3}}) {
    auto ls = spec.instances(ts);
    ASSERT_EQ(ls.size(), 1u);
    EXPECT_EQ(ls[0], ts);
    EXPECT_EQ(spec.output_ts(ls[0]), ts);
  }
}

TEST(WindowSpec, SlidingOverlapCount) {
  // WS = 3·WA: aligned timestamps fall in exactly WS/WA = 3 instances.
  WindowSpec spec{.advance = 5, .size = 15};
  auto ls = spec.instances(42);
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0], 30);
  EXPECT_EQ(ls[1], 35);
  EXPECT_EQ(ls[2], 40);
}

TEST(WindowSpec, InstanceBoundsContainTimestamp) {
  WindowSpec spec{.advance = 3, .size = 7};
  for (Timestamp ts = -25; ts <= 25; ++ts) {
    for (Timestamp l : spec.instances(ts)) {
      EXPECT_LE(l, ts) << "ts=" << ts;
      EXPECT_LT(ts, spec.end(l)) << "ts=" << ts;
    }
  }
}

TEST(WindowSpec, EveryContainingInstanceIsEnumerated) {
  // Cross-check instances() against a brute-force scan of boundaries.
  WindowSpec spec{.advance = 4, .size = 10};
  for (Timestamp ts = -30; ts <= 30; ++ts) {
    auto ls = spec.instances(ts);
    std::vector<Timestamp> expected;
    for (Timestamp l = -48; l <= 48; l += spec.advance) {
      if (l <= ts && ts < spec.end(l)) expected.push_back(l);
    }
    EXPECT_EQ(ls, expected) << "ts=" << ts;
  }
}

TEST(WindowSpec, OutputTimestampIsRightBoundaryMinusDelta) {
  WindowSpec spec{.advance = 2, .size = 6};
  EXPECT_EQ(spec.output_ts(10), 15);
  // Observation 1: t_o.τ >= t_i.τ for every t_i in the instance.
  for (Timestamp ts = 10; ts < 16; ++ts) {
    EXPECT_GE(spec.output_ts(10), ts);
  }
}

TEST(WindowSpec, ClosesAndPurgeableRespectLateness) {
  WindowSpec spec{.advance = 5, .size = 5, .lateness = 3};
  // Instance [10, 15).
  EXPECT_FALSE(spec.closes(10, 14));
  EXPECT_TRUE(spec.closes(10, 15));
  EXPECT_FALSE(spec.purgeable(10, 17));
  EXPECT_TRUE(spec.purgeable(10, 18));
  EXPECT_TRUE(spec.admits(10, 17));
  EXPECT_FALSE(spec.admits(10, 18));
}

TEST(WindowSpec, ZeroLatenessPurgesAtClose) {
  WindowSpec spec{.advance = 5, .size = 5};
  EXPECT_EQ(spec.closes(10, 15), spec.purgeable(10, 15));
  EXPECT_FALSE(spec.admits(10, 15));
}

// Parameterized sweep: the two instance-boundary formulas agree with the
// direct containment definition for many (WA, WS) shapes.
class WindowSweep
    : public ::testing::TestWithParam<std::tuple<Timestamp, Timestamp>> {};

TEST_P(WindowSweep, FirstAndLastInstanceAreTight) {
  auto [wa, ws] = GetParam();
  WindowSpec spec{.advance = wa, .size = ws};
  for (Timestamp ts = -40; ts <= 40; ++ts) {
    const Timestamp first = spec.first_instance(ts);
    const Timestamp last = spec.last_instance(ts);
    // Both contain ts...
    EXPECT_LE(first, ts);
    EXPECT_LT(ts, spec.end(first));
    EXPECT_LE(last, ts);
    EXPECT_LT(ts, spec.end(last));
    // ...and are extremal: one step further no longer contains ts.
    EXPECT_GE(ts, spec.end(first - wa));
    EXPECT_LT(ts, last + wa);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 5),
                      std::make_tuple(2, 6), std::make_tuple(3, 7),
                      std::make_tuple(5, 5), std::make_tuple(4, 10),
                      std::make_tuple(7, 21), std::make_tuple(10, 13)));

}  // namespace
}  // namespace aggspes
