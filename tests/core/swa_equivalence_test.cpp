// Randomized, seeded property test (DESIGN.md § 9): the sliced backends —
// replay and incremental-monoid — must emit exactly the buffering
// WindowMachine's (ts, value) stream through the full operator family,
// across random WA/WS/L combinations, out-of-order input, late arrivals
// (both admitted re-fires and drops) and negative timestamps. Output
// multisets are compared because per-instance key fire order is
// unordered_map-dependent; counters pin the lateness bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/aggregate_eager.hpp"
#include "core/operators/aggregate_plus.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/swa/backends.hpp"
#include "core/swa/monoid_aggregate.hpp"

namespace aggspes {
namespace {

std::vector<Tuple<int>> random_tuples(unsigned seed, int n, Timestamp start) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 20);
  std::vector<Tuple<int>> v;
  Timestamp ts = start;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

/// Locally-shuffled script with *aggressive* watermarks: each watermark
/// trails the running max timestamp by a small random slack, so shuffled
/// tuples genuinely arrive late — some within L (re-fires), some beyond
/// it (drops). All backends see the identical element sequence.
std::vector<Element<int>> lateish_script(std::vector<Tuple<int>> tuples,
                                         int k, int wm_every,
                                         Timestamp flush_to, unsigned seed) {
  std::mt19937 rng(seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + static_cast<std::size_t>(k)));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  std::uniform_int_distribution<Timestamp> slack(0, 4);
  std::vector<Element<int>> script;
  Timestamp max_ts = kMinTimestamp;
  Timestamp last_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    script.push_back(tuples[i]);
    max_ts = std::max(max_ts, tuples[i].ts);
    if ((i + 1) % static_cast<std::size_t>(wm_every) == 0) {
      const Timestamp w = max_ts - slack(rng);
      if (w > last_wm) {
        script.push_back(Watermark{w});
        last_wm = w;
      }
    }
  }
  script.push_back(Watermark{flush_to});
  script.push_back(EndOfStream{});
  return script;
}

struct RunResult {
  std::multiset<std::pair<Timestamp, int>> out;
  std::uint64_t dropped;
  std::uint64_t late_updates;
};

template <typename AggT>
RunResult run_sum(const std::vector<Element<int>>& script, WindowSpec spec) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<AggT>(
      spec, [](const int& v) { return v % 3; },
      [](const WindowView<int, int>& w) -> std::optional<int> {
        int s = 0;
        for (const auto& t : w.items) s += t.value;
        return s;
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  return {sink.multiset(), agg.machine().dropped_late(),
          agg.machine().late_updates()};
}

RunResult run_monoid_sum(const std::vector<Element<int>>& script,
                         WindowSpec spec) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<swa::MonoidAggregateOp<int, int, int, int>>(
      spec, [](const int& v) { return v % 3; }, swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa)
          -> std::optional<int> { return wa.agg; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  return {sink.multiset(), agg.machine().dropped_late(),
          agg.machine().late_updates()};
}

TEST(SwaEquivalence, RandomizedAggregateAcrossSpecsAndSeeds) {
  const std::vector<WindowSpec> specs = {
      {.advance = 1, .size = 5, .lateness = 0},
      {.advance = 4, .size = 10, .lateness = 5},   // gcd 2: true panes
      {.advance = 5, .size = 5, .lateness = 3},    // tumbling
      {.advance = 7, .size = 3, .lateness = 0},    // sampling (WA > WS)
      {.advance = 10, .size = 25, .lateness = 40}, // everything admitted
      {.advance = 3, .size = 17, .lateness = 8},   // coprime: width-1 panes
  };
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const WindowSpec spec = specs[si];
    for (unsigned seed : {1u, 2u, 3u}) {
      // Negative start: instances and panes straddle zero.
      auto tuples = random_tuples(seed * 7 + static_cast<unsigned>(si), 200,
                                  /*start=*/-50);
      const Timestamp flush = tuples.back().ts + spec.size + spec.lateness + 5;
      auto script = lateish_script(std::move(tuples), /*k=*/8,
                                   /*wm_every=*/7, flush, seed);

      const RunResult buffering =
          run_sum<AggregateOp<int, int, int>>(script, spec);
      const RunResult sliced =
          run_sum<swa::SlicedAggregateOp<int, int, int>>(script, spec);
      const RunResult monoid = run_monoid_sum(script, spec);

      EXPECT_GT(buffering.out.size(), 0u);
      EXPECT_EQ(sliced.out, buffering.out) << "spec " << si << " seed " << seed;
      EXPECT_EQ(sliced.dropped, buffering.dropped);
      EXPECT_EQ(sliced.late_updates, buffering.late_updates);
      EXPECT_EQ(monoid.out, buffering.out) << "spec " << si << " seed " << seed;
      EXPECT_EQ(monoid.dropped, buffering.dropped);
      EXPECT_EQ(monoid.late_updates, buffering.late_updates);
    }
  }
}

TEST(SwaEquivalence, AggregatePlusEmitsIdenticalMultiOutputs) {
  const WindowSpec spec{.advance = 4, .size = 10, .lateness = 6};
  auto tuples = random_tuples(42, 150, -20);
  const Timestamp flush = tuples.back().ts + 30;
  auto script = lateish_script(std::move(tuples), 6, 9, flush, 42);

  // f_O emits sum and count: two outputs per (instance, key).
  auto f_o = [](const WindowView<int, int>& w) {
    int s = 0;
    for (const auto& t : w.items) s += t.value;
    return std::vector<int>{s, static_cast<int>(w.items.size())};
  };
  auto run = [&](auto* tag) {
    using AggT = std::remove_pointer_t<decltype(tag)>;
    Flow flow;
    auto& src = flow.add<ScriptSource<int>>(script);
    auto& agg = flow.add<AggT>(spec, [](const int& v) { return v % 2; }, f_o);
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(src.out(), agg.in());
    flow.connect(agg.out(), sink.in());
    flow.run();
    return sink.multiset();
  };
  const auto buffering =
      run(static_cast<AggregatePlusOp<int, int, int>*>(nullptr));
  const auto sliced =
      run(static_cast<swa::SlicedAggregatePlusOp<int, int, int>*>(nullptr));
  EXPECT_GT(buffering.size(), 0u);
  EXPECT_EQ(sliced, buffering);

  // Monoid A+ with ⟨sum⟩ and a two-output lowering must match as well.
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<swa::MonoidAggregatePlusOp<int, int, int, int>>(
      spec, [](const int& v) { return v % 2; }, swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa) {
        return std::vector<int>{wa.agg, static_cast<int>(wa.count)};
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.multiset(), buffering);
}

TEST(SwaEquivalence, EagerBackendsEmitIdenticalIncrementalStreams) {
  const WindowSpec spec{.advance = 5, .size = 15, .lateness = 0};
  auto tuples = random_tuples(7, 120, 0);
  const Timestamp flush = tuples.back().ts + 20;
  auto script = lateish_script(std::move(tuples), 4, 8, flush, 7);

  // f_I emits the running count on every arrival; f_O nothing.
  auto f_i = [](const WindowView<int, int>& w) {
    return std::vector<int>{static_cast<int>(w.items.size())};
  };
  auto f_o = [](const WindowView<int, int>&) { return std::vector<int>{}; };
  auto run = [&](auto* tag) {
    using AggT = std::remove_pointer_t<decltype(tag)>;
    Flow flow;
    auto& src = flow.add<ScriptSource<int>>(script);
    auto& agg =
        flow.add<AggT>(spec, [](const int& v) { return v % 2; }, f_i, f_o);
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(src.out(), agg.in());
    flow.connect(agg.out(), sink.in());
    flow.run();
    return sink.multiset();
  };
  const auto buffering =
      run(static_cast<AggregateEagerOp<int, int, int>*>(nullptr));
  const auto sliced =
      run(static_cast<swa::SlicedAggregateEagerOp<int, int, int>*>(nullptr));
  EXPECT_GT(buffering.size(), 0u);
  EXPECT_EQ(sliced, buffering);

  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = flow.add<swa::MonoidAggregateEagerOp<int, int, int, int>>(
      spec, [](const int& v) { return v % 2; }, swa::sum_monoid<int>(),
      [](const int&, const swa::WindowAggregate<int>& wa) {
        return std::vector<int>{static_cast<int>(wa.count)};
      },
      [](const int&, const swa::WindowAggregate<int>&) {
        return std::vector<int>{};
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.multiset(), buffering);
}

}  // namespace
}  // namespace aggspes
