// Unit tests for the minimalistic Aggregate A and the relaxed A+
// (§ 2.1, § 2.3, § 2.4, § 5.1).
#include "core/operators/aggregate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/hashing.hpp"

#include "core/operators/aggregate_plus.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Reading {
  int sensor;
  int value;
  friend bool operator==(const Reading&, const Reading&) = default;
};

}  // namespace
}  // namespace aggspes

template <>
struct std::hash<aggspes::Reading> {
  size_t operator()(const aggspes::Reading& r) const {
    return aggspes::hash_values(r.sensor, r.value);
  }
};

namespace aggspes {
namespace {

using SumAgg = AggregateOp<Reading, int, int>;

SumAgg::KeyFn by_sensor() {
  return [](const Reading& r) { return r.sensor; };
}

SumAgg::AggFn sum_values() {
  return [](const WindowView<Reading, int>& w) -> std::optional<int> {
    int s = 0;
    for (const auto& t : w.items) s += t.value.value;
    return s;
  };
}

TEST(Aggregate, TumblingSumPerKey) {
  Flow flow;
  std::vector<Tuple<Reading>> in{
      {0, 0, {1, 10}}, {1, 0, {1, 20}}, {2, 0, {2, 5}},
      {10, 0, {1, 7}}, {11, 0, {2, 8}},
  };
  auto& src = flow.add<TimedSource<Reading>>(in, /*period=*/5,
                                             /*flush_to=*/30);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();

  // Window [0,10): key1 -> 30, key2 -> 5; window [10,20): key1 -> 7,
  // key2 -> 8. Output τ = γ.l + WS − δ.
  auto m = sink.multiset();
  std::multiset<std::pair<Timestamp, int>> expected{
      {9, 30}, {9, 5}, {19, 7}, {19, 8}};
  EXPECT_EQ(m, expected);
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_EQ(sink.watermark_regressions(), 0);
}

TEST(Aggregate, SlidingWindowCountsEachTupleInEveryInstance) {
  Flow flow;
  std::vector<Tuple<Reading>> in{{4, 0, {1, 1}}, {7, 0, {1, 1}},
                                 {12, 0, {1, 1}}};
  auto& src = flow.add<TimedSource<Reading>>(in, 5, 40);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 5, .size = 15},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();

  // ts=4 falls in instances l ∈ {-10,-5,0}; ts=7 in {-5,0,5};
  // ts=12 in {0,5,10}.
  auto m = sink.multiset();
  std::multiset<std::pair<Timestamp, int>> expected{
      {4, 1},   // l=-10: {4}
      {9, 2},   // l=-5:  {4,7}
      {14, 3},  // l=0:   {4,7,12}
      {19, 2},  // l=5:   {7,12}
      {24, 1},  // l=10:  {12}
  };
  EXPECT_EQ(m, expected);
}

TEST(Aggregate, EmptyResultSuppressesOutput) {
  Flow flow;
  std::vector<Tuple<Reading>> in{{0, 0, {1, 10}}, {10, 0, {1, 3}}};
  auto& src = flow.add<TimedSource<Reading>>(in, 5, 30);
  auto& agg = flow.add<SumAgg>(
      WindowSpec{.advance = 10, .size = 10}, by_sensor(),
      [](const WindowView<Reading, int>& w) -> std::optional<int> {
        int s = 0;
        for (const auto& t : w.items) s += t.value.value;
        if (s < 5) return std::nullopt;  // f_O returns ∅
        return s;
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, 10);
}

TEST(Aggregate, WatermarkForwardedAfterResults) {
  // § 2.3: upon a watermark growing W_A, A outputs all due windows and only
  // then forwards the watermark.
  Flow flow;
  std::vector<Element<Reading>> script{
      Tuple<Reading>{0, 0, {1, 4}},
      Watermark{10},  // closes [0,10)
      EndOfStream{},
  };
  auto& src = flow.add<ScriptSource<Reading>>(script);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].ts, 9);
  ASSERT_EQ(sink.watermarks().size(), 1u);
  // The result (τ=9) must not be late w.r.t. the forwarded watermark order.
  EXPECT_EQ(sink.late_tuples(), 0);
}

TEST(Aggregate, ObservationOneHolds) {
  // Observation 1: t_o.τ >= t_i.τ for every input of the instance.
  Flow flow;
  std::vector<Tuple<Reading>> in;
  for (Timestamp ts = 0; ts < 50; ts += 3) in.push_back({ts, 0, {1, 1}});
  auto& src = flow.add<TimedSource<Reading>>(in, 4, 80);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 7, .size = 14},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_FALSE(sink.tuples().empty());
  EXPECT_EQ(sink.late_tuples(), 0);  // no output precedes its watermark
}

TEST(Aggregate, LateArrivalWithinLatenessProducesUpdate) {
  // § 2.4: a tuple falling in γ after γ produced a result is still added
  // and can produce an updated output if γ.l + WS <= W + L.
  Flow flow;
  std::vector<Element<Reading>> script{
      Tuple<Reading>{2, 0, {1, 10}},
      Watermark{12},                 // closes [0,10): result 10
      Tuple<Reading>{5, 0, {1, 5}},  // late; admitted (L = 5: 10+5 > 12)
      Watermark{20},
      EndOfStream{},
  };
  auto& src = flow.add<ScriptSource<Reading>>(script);
  auto& agg = flow.add<SumAgg>(
      WindowSpec{.advance = 10, .size = 10, .lateness = 5}, by_sensor(),
      sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].value, 10);
  EXPECT_EQ(sink.tuples()[1].value, 15);  // the updated result
  EXPECT_EQ(sink.tuples()[1].ts, 9);
  EXPECT_EQ(sink.late_tuples(), 1);  // the update is late downstream
  EXPECT_EQ(agg.machine().late_updates(), 1u);
}

TEST(Aggregate, LateArrivalBeyondLatenessDropped) {
  Flow flow;
  std::vector<Element<Reading>> script{
      Tuple<Reading>{2, 0, {1, 10}},
      Watermark{16},                 // [0,10) purgeable: 10 + 5 <= 16
      Tuple<Reading>{5, 0, {1, 5}},  // beyond lateness: dropped
      Watermark{30},
      EndOfStream{},
  };
  auto& src = flow.add<ScriptSource<Reading>>(script);
  auto& agg = flow.add<SumAgg>(
      WindowSpec{.advance = 10, .size = 10, .lateness = 5}, by_sensor(),
      sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, 10);
  EXPECT_EQ(agg.machine().dropped_late(), 1u);
}

TEST(Aggregate, ZeroLatenessDropsAllLateArrivals) {
  Flow flow;
  std::vector<Element<Reading>> script{
      Tuple<Reading>{2, 0, {1, 10}},
      Watermark{10},
      Tuple<Reading>{5, 0, {1, 5}},
      Watermark{20},
      EndOfStream{},
  };
  auto& src = flow.add<ScriptSource<Reading>>(script);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(agg.machine().dropped_late(), 1u);
}

TEST(Aggregate, OutOfOrderWithinWatermarkBoundIsCorrect)
{
  // Tuples may arrive out of timestamp order; as long as they respect the
  // watermark, windows still see the full content.
  Flow flow;
  std::vector<Element<Reading>> script{
      Tuple<Reading>{7, 0, {1, 1}},
      Tuple<Reading>{2, 0, {1, 2}},  // older than previous, but no WM yet
      Tuple<Reading>{5, 0, {1, 4}},
      Watermark{10},
      EndOfStream{},
  };
  auto& src = flow.add<ScriptSource<Reading>>(script);
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, 7);
}

TEST(Aggregate, MultipleInputStreamsCombineWatermarks) {
  // P1 + § 2.3: with two input streams, W_A is the min of the latest
  // watermark per stream; windows fire only when both streams allow.
  Flow flow;
  auto& s1 = flow.add<ScriptSource<Reading>>(std::vector<Element<Reading>>{
      Tuple<Reading>{1, 0, {1, 10}}, Watermark{30}, EndOfStream{}});
  auto& s2 = flow.add<ScriptSource<Reading>>(std::vector<Element<Reading>>{
      Tuple<Reading>{2, 0, {1, 7}}, Watermark{8}, Watermark{30},
      EndOfStream{}});
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values(),
                               /*regular_inputs=*/2);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(s1.out(), agg.in(0));
  flow.connect(s2.out(), agg.in(1));
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, 17);  // both streams' tuples combined
}

TEST(Aggregate, FlushOnEndFiresOpenWindows) {
  Flow flow;
  auto& src = flow.add<ScriptSource<Reading>>(std::vector<Element<Reading>>{
      Tuple<Reading>{2, 0, {1, 10}}, EndOfStream{}});  // no closing WM
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, 10);
  EXPECT_TRUE(sink.ended());
}

TEST(Aggregate, NoFlushOnEndWhenDisabled) {
  Flow flow;
  auto& src = flow.add<ScriptSource<Reading>>(std::vector<Element<Reading>>{
      Tuple<Reading>{2, 0, {1, 10}}, EndOfStream{}});
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values(),
                               /*regular_inputs=*/1, /*loop_inputs=*/0,
                               /*flush_on_end=*/false);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.tuples().empty());
  EXPECT_TRUE(sink.ended());
}

TEST(Aggregate, StampPropagatesMaxOfContributors) {
  Flow flow;
  auto& src = flow.add<ScriptSource<Reading>>(std::vector<Element<Reading>>{
      Tuple<Reading>{0, 111, {1, 1}}, Tuple<Reading>{1, 333, {1, 1}},
      Tuple<Reading>{2, 222, {1, 1}}, Watermark{10}, EndOfStream{}});
  auto& agg = flow.add<SumAgg>(WindowSpec{.advance = 10, .size = 10},
                               by_sensor(), sum_values());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].stamp, 333u);
}

TEST(AggregatePlus, EmitsArbitraryManyOutputsPerInstance) {
  // § 5.1: A+ may produce any number of tuples from one window instance.
  Flow flow;
  std::vector<Tuple<Reading>> in{{0, 0, {1, 3}}, {1, 0, {1, 2}}};
  auto& src = flow.add<TimedSource<Reading>>(in, 5, 20);
  auto& agg = flow.add<AggregatePlusOp<Reading, int, int>>(
      WindowSpec{.advance = 10, .size = 10},
      [](const Reading& r) { return r.sensor; },
      [](const WindowView<Reading, int>& w) {
        // One output per unit of each value: 3 + 2 = 5 outputs.
        std::vector<int> outs;
        for (const auto& t : w.items) {
          for (int i = 0; i < t.value.value; ++i) outs.push_back(i);
        }
        return outs;
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 5u);
  for (const auto& t : sink.tuples()) EXPECT_EQ(t.ts, 9);
}

TEST(AggregatePlus, EmptyVectorMeansNoOutput) {
  Flow flow;
  std::vector<Tuple<Reading>> in{{0, 0, {1, 3}}};
  auto& src = flow.add<TimedSource<Reading>>(in, 5, 20);
  auto& agg = flow.add<AggregatePlusOp<Reading, int, int>>(
      WindowSpec{.advance = 10, .size = 10},
      [](const Reading& r) { return r.sensor; },
      [](const WindowView<Reading, int>&) { return std::vector<int>{}; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.tuples().empty());
}

}  // namespace
}  // namespace aggspes
