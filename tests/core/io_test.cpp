// Tests for the file ingress/egress operators and the workload codecs.
#include "core/operators/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/operators/sink.hpp"
#include "core/operators/stateless.hpp"
#include "workloads/codecs.hpp"

namespace aggspes {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             (stem + std::to_string(reinterpret_cast<uintptr_t>(this)) +
              ".csv"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::optional<int> parse_int(const std::vector<std::string>& f) {
  if (f.size() != 1) return std::nullopt;
  try {
    return std::stoi(f[0]);
  } catch (...) {
    return std::nullopt;
  }
}

TEST(SplitFields, BasicAndTrailingDelimiter) {
  EXPECT_EQ(split_fields("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_fields("a,,c").size(), 3u);
  EXPECT_EQ(split_fields("a,"), (std::vector<std::string>{"a", ""}));
  EXPECT_TRUE(split_fields("").empty());
}

TEST(FileRoundTrip, SinkThenSourceRestoresStream) {
  TempFile f("roundtrip");
  {
    Flow flow;
    auto& src = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
        Tuple<int>{1, 0, 10}, Tuple<int>{3, 0, 20}, Tuple<int>{3, 0, 30},
        Watermark{5}, EndOfStream{}});
    auto& sink = flow.add<FileSink<int>>(
        f.path(), [](const int& v) { return std::to_string(v); });
    flow.connect(src.out(), sink.in());
    flow.run();
    EXPECT_EQ(sink.written(), 3u);
  }
  {
    Flow flow;
    auto& src = flow.add<FileSource<int>>(f.path(), parse_int,
                                          /*wm_period=*/2);
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(src.out(), sink.in());
    flow.run();
    EXPECT_EQ(src.tuple_count(), 3u);
    ASSERT_EQ(sink.tuples().size(), 3u);
    EXPECT_EQ(sink.tuples()[0], (Tuple<int>{1, 0, 10}));
    EXPECT_EQ(sink.tuples()[2], (Tuple<int>{3, 0, 30}));
    EXPECT_TRUE(sink.ended());
    EXPECT_EQ(sink.late_tuples(), 0);
  }
}

TEST(FileSource, SkipsMalformedLinesAndCountsThem) {
  TempFile f("malformed");
  {
    std::ofstream out(f.path());
    out << "1,10\nnot-a-timestamp,20\n2,not-an-int\n3,30\n\n";
  }
  Flow flow;
  auto& src = flow.add<FileSource<int>>(f.path(), parse_int, 2);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), sink.in());
  flow.run();
  EXPECT_EQ(src.tuple_count(), 2u);
  EXPECT_EQ(src.skipped_lines(), 2u);
}

TEST(FileSource, RejectsOutOfOrderTimestamps) {
  TempFile f("ooo");
  {
    std::ofstream out(f.path());
    out << "5,10\n3,20\n";
  }
  EXPECT_THROW(
      read_tuples<int>(f.path(),
                       [](const std::vector<std::string>& x) {
                         return parse_int(x);
                       }),
      std::runtime_error);
}

TEST(FileSource, MissingFileThrows) {
  EXPECT_THROW(read_tuples<int>("/nonexistent/nope.csv",
                                [](const std::vector<std::string>& x) {
                                  return parse_int(x);
                                }),
               std::runtime_error);
}

TEST(WikiCodec, RoundTrips) {
  wiki::WikiGenerator gen(3);
  for (std::uint64_t i = 0; i < 20; ++i) {
    wiki::WikiEdit e = gen.make(i);
    auto parsed = wiki::parse_edit({wiki::format_edit(e)});
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
}

TEST(WikiCodec, RejectsMalformed) {
  EXPECT_FALSE(wiki::parse_edit({"no separators here"}).has_value());
  EXPECT_FALSE(wiki::parse_edit({"one|separator"}).has_value());
  EXPECT_FALSE(wiki::parse_edit({}).has_value());
}

TEST(ScanCodec, RoundTripsWithinPrecision) {
  scans::ScanGenerator gen(4);
  scans::Scan2D s = gen.make(7);
  auto parsed = scans::parse_scan({scans::format_scan(s)});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, s.id);
  ASSERT_EQ(parsed->dist.size(), s.dist.size());
  for (std::size_t i = 0; i < s.dist.size(); ++i) {
    EXPECT_NEAR(parsed->dist[i], s.dist[i], 1e-6);
  }
}

TEST(ScanCodec, RejectsMalformed) {
  EXPECT_FALSE(scans::parse_scan({"justanid"}).has_value());
  EXPECT_FALSE(scans::parse_scan({"x;1.0"}).has_value());
  EXPECT_FALSE(scans::parse_scan({}).has_value());
}

TEST(FilePipeline, ReplayThroughOperatorToFile) {
  TempFile in_file("pipeline_in"), out_file("pipeline_out");
  {
    std::ofstream out(in_file.path());
    for (int i = 0; i < 10; ++i) out << i << "," << i * 2 << "\n";
  }
  Flow flow;
  auto& src = flow.add<FileSource<int>>(in_file.path(), parse_int, 3);
  auto& fm = flow.add<FlatMapOp<int, int>>([](const int& v) {
    return v % 4 == 0 ? std::vector<int>{v} : std::vector<int>{};
  });
  auto& sink = flow.add<FileSink<int>>(
      out_file.path(), [](const int& v) { return std::to_string(v); });
  flow.connect(src.out(), fm.in());
  flow.connect(fm.out(), sink.in());
  flow.run();
  // Values 0,2,4,...,18: multiples of 4 are 0,4,8,12,16 -> 5 lines.
  EXPECT_EQ(sink.written(), 5u);
}

}  // namespace
}  // namespace aggspes
