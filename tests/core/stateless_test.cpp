// Unit tests for the Dedicated stateless operators (§ 2.1): Filter, Map,
// FlatMap — semantics, timestamp preservation, watermark pass-through.
#include "core/operators/stateless.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

std::vector<Element<int>> script(std::vector<Tuple<int>> tuples) {
  std::vector<Element<int>> s;
  for (auto& t : tuples) s.push_back(std::move(t));
  s.push_back(Watermark{100});
  s.push_back(EndOfStream{});
  return s;
}

TEST(Filter, ForwardsExactTupleWhenPredicateHolds) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(
      script({{1, 77, 10}, {2, 88, 11}}));
  auto& f = flow.add<FilterOp<int>>([](int v) { return v == 10; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), f.in());
  flow.connect(f.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  // t_i = t_o: value, timestamp AND latency stamp all preserved.
  EXPECT_EQ(sink.tuples()[0], (Tuple<int>{1, 77, 10}));
}

TEST(Filter, ForwardsWatermarksUnchanged) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script({}));
  auto& f = flow.add<FilterOp<int>>([](int) { return false; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), f.in());
  flow.connect(f.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.watermarks(), (std::vector<Timestamp>{100}));
  EXPECT_TRUE(sink.ended());
}

TEST(Map, AppliesFunctionKeepsTimestampAndStamp) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script({{5, 99, 3}}));
  auto& m = flow.add<MapOp<int, std::string>>(
      [](const int& v) { return std::string(static_cast<std::size_t>(v),
                                            'x'); });
  auto& sink = flow.add<CollectorSink<std::string>>();
  flow.connect(src.out(), m.in());
  flow.connect(m.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value, "xxx");
  EXPECT_EQ(sink.tuples()[0].ts, 5);
  EXPECT_EQ(sink.tuples()[0].stamp, 99u);
}

TEST(FlatMap, ZeroOneManyOutputs) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(
      script({{0, 0, 0}, {1, 0, 1}, {2, 0, 3}}));
  auto& fm = flow.add<FlatMapOp<int, int>>([](const int& v) {
    std::vector<int> out;
    for (int i = 0; i < v; ++i) out.push_back(v * 10 + i);
    return out;
  });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), fm.in());
  flow.connect(fm.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 4u);  // 0 + 1 + 3
  EXPECT_EQ(sink.tuples()[0].value, 10);
  EXPECT_EQ(sink.tuples()[0].ts, 1);
  EXPECT_EQ(sink.tuples()[1].value, 30);
  EXPECT_EQ(sink.tuples()[3].value, 32);
  for (const auto& t : sink.tuples()) EXPECT_EQ(t.ts, t.value / 10);
}

TEST(FlatMap, OutputOrderFollowsFunctionOrder) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script({{0, 0, 1}}));
  auto& fm = flow.add<FlatMapOp<int, int>>(
      [](const int&) { return std::vector<int>{3, 1, 2}; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), fm.in());
  flow.connect(fm.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_EQ(sink.tuples()[0].value, 3);
  EXPECT_EQ(sink.tuples()[1].value, 1);
  EXPECT_EQ(sink.tuples()[2].value, 2);
}

TEST(StatelessChain, FilterMapFlatMapComposition) {
  Flow flow;
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 10; ++ts) in.push_back({ts, 0, int(ts)});
  auto& src = flow.add<ScriptSource<int>>(script(in));
  auto& f = flow.add<FilterOp<int>>([](int v) { return v % 2 == 0; });
  auto& m = flow.add<MapOp<int, int>>([](const int& v) { return v / 2; });
  auto& fm = flow.add<FlatMapOp<int, int>>(
      [](const int& v) { return std::vector<int>{v, -v}; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), f.in());
  flow.connect(f.out(), m.in());
  flow.connect(m.out(), fm.in());
  flow.connect(fm.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 10u);  // 5 evens * 2 outputs
  EXPECT_TRUE(sink.ended());
}

}  // namespace
}  // namespace aggspes
