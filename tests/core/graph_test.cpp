// Tests for the dataflow graph plumbing and the deterministic scheduler:
// P1 (typed union), P2 (identical fan-out sequences), P3 (loops carry no
// watermarks), and cycle handling.
#include "core/graph.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

std::vector<Element<int>> ints_script(std::vector<int> values) {
  std::vector<Element<int>> s;
  Timestamp ts = 0;
  for (int v : values) s.push_back(Tuple<int>{ts++, 0, v});
  s.push_back(Watermark{ts});
  s.push_back(EndOfStream{});
  return s;
}

TEST(Flow, SourceToSinkDeliversAllElements) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({1, 2, 3}));
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_EQ(sink.tuples()[0].value, 1);
  EXPECT_EQ(sink.tuples()[2].value, 3);
  EXPECT_EQ(sink.watermarks(), std::vector<Timestamp>{3});
  EXPECT_TRUE(sink.ended());
}

TEST(Flow, FanOutDeliversIdenticalSequences) {
  // P2: a stream feeding several operators delivers the same
  // tuples/watermarks in the same order to each.
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({5, 6, 7, 8}));
  auto& a = flow.add<CollectorSink<int>>();
  auto& b = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), a.in());
  flow.connect(src.out(), b.in());
  flow.run();
  ASSERT_EQ(a.tuples().size(), b.tuples().size());
  for (std::size_t i = 0; i < a.tuples().size(); ++i) {
    EXPECT_EQ(a.tuples()[i], b.tuples()[i]);
  }
  EXPECT_EQ(a.watermarks(), b.watermarks());
  EXPECT_TRUE(a.ended());
  EXPECT_TRUE(b.ended());
}

TEST(Flow, LoopChannelsCarryTuplesOnly) {
  // P3: watermarks (and end-of-stream) are not fed through loop edges.
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({1}));
  auto& normal = flow.add<CollectorSink<int>>();
  auto& looped = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), normal.in());
  flow.connect(src.out(), looped.in(), EdgeKind::kLoop);
  flow.run();
  EXPECT_EQ(normal.tuples().size(), 1u);
  EXPECT_EQ(looped.tuples().size(), 1u);
  EXPECT_EQ(normal.watermarks().size(), 1u);
  EXPECT_TRUE(looped.watermarks().empty());
  EXPECT_TRUE(normal.ended());
  EXPECT_FALSE(looped.ended());
}

TEST(Flow, UnionOfStreamsIntoOneConsumer) {
  // P1: physical streams sharing a type can feed the same operator. Two
  // sources connect to the same sink port; all tuples arrive.
  Flow flow;
  auto& s1 = flow.add<ScriptSource<int>>(ints_script({1, 2}));
  auto& s2 = flow.add<ScriptSource<int>>(ints_script({3, 4}));
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(s1.out(), sink.in());
  flow.connect(s2.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 4u);
}

TEST(Flow, PerEdgeFifoOrderPreserved) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({1, 2, 3, 4, 5}));
  auto& filt = flow.add<FilterOp<int>>([](int v) { return v % 2 == 1; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), filt.in());
  flow.connect(filt.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_EQ(sink.tuples()[0].value, 1);
  EXPECT_EQ(sink.tuples()[1].value, 3);
  EXPECT_EQ(sink.tuples()[2].value, 5);
}

// A node that echoes every tuple it receives back into a feedback edge a
// bounded number of times; exercises cycle scheduling.
class BouncerNode final : public NodeBase {
 public:
  BouncerNode()
      : port_([this](const Element<int>& e) {
          if (const auto* t = std::get_if<Tuple<int>>(&e)) {
            if (t->value != 0) {
              // Positive values count down to zero; negative values bounce
              // forever (used to exercise livelock detection).
              const int next = t->value > 0 ? t->value - 1 : t->value;
              out_.push_tuple(Tuple<int>{t->ts, t->stamp, next});
            } else {
              done_.push_tuple(*t);
            }
          } else {
            out_.push(e);
            done_.push(e);
          }
        }) {}

  Consumer<int>& in() { return port_; }
  Outlet<int>& out() { return out_; }    // feedback
  Outlet<int>& done() { return done_; }  // terminal output

 private:
  Port<int> port_;
  Outlet<int> out_;
  Outlet<int> done_;
};

TEST(Flow, CyclicGraphQuiesces) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({3, 5}));
  auto& bouncer = flow.add<BouncerNode>();
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), bouncer.in());
  flow.connect(bouncer.out(), bouncer.in(), EdgeKind::kLoop);
  flow.connect(bouncer.done(), sink.in());
  flow.run();
  // Each value v loops v times, then lands in the sink as 0.
  ASSERT_EQ(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].value, 0);
  EXPECT_EQ(sink.tuples()[1].value, 0);
  EXPECT_TRUE(sink.ended());
}

TEST(Flow, RunawayCycleIsDetected) {
  Flow flow;
  // A bouncer whose values never reach zero: -1 decrements forever.
  auto& src = flow.add<ScriptSource<int>>(
      std::vector<Element<int>>{Tuple<int>{0, 0, -1}});
  auto& bouncer = flow.add<BouncerNode>();
  flow.connect(src.out(), bouncer.in());
  flow.connect(bouncer.out(), bouncer.in(), EdgeKind::kLoop);
  EXPECT_THROW(flow.run(/*max_deliveries=*/1000), std::runtime_error);
}

TEST(Flow, MapChangesTypeAndPreservesTimestamps) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script({7, 8}));
  auto& map = flow.add<MapOp<int, std::string>>(
      [](int v) { return std::to_string(v); });
  auto& sink = flow.add<CollectorSink<std::string>>();
  flow.connect(src.out(), map.in());
  flow.connect(map.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].value, "7");
  EXPECT_EQ(sink.tuples()[0].ts, 0);
  EXPECT_EQ(sink.tuples()[1].value, "8");
  EXPECT_EQ(sink.tuples()[1].ts, 1);
}

TEST(TimedScript, EmitsC1CompliantWatermarks) {
  std::vector<Tuple<int>> tuples{{0, 0, 1}, {4, 0, 2}, {9, 0, 3}};
  auto script = timed_script(tuples, /*period=*/3, /*flush_to=*/15);
  // Watermarks must appear with event-time spacing <= 3 and each tuple must
  // respect every preceding watermark.
  Timestamp last_wm = kMinTimestamp;
  Timestamp prev_wm = kMinTimestamp;
  bool saw_end = false;
  for (const auto& e : script) {
    if (const auto* w = std::get_if<Watermark>(&e)) {
      if (prev_wm != kMinTimestamp) {
        EXPECT_LE(w->ts - prev_wm, 3);
      }
      EXPECT_GT(w->ts, prev_wm);
      prev_wm = w->ts;
      last_wm = w->ts;
    } else if (const auto* t = std::get_if<Tuple<int>>(&e)) {
      EXPECT_GE(t->ts, last_wm);
    } else {
      saw_end = true;
    }
  }
  EXPECT_TRUE(saw_end);
  EXPECT_EQ(prev_wm, 15);  // final flush watermark
}

}  // namespace
}  // namespace aggspes
