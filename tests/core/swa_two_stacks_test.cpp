// Unit tests for the two-stacks FIFO aggregator, including the ordering
// guarantee for non-commutative monoids and the snapshot round trip.
#include "core/swa/two_stacks.hpp"

#include <gtest/gtest.h>

#include <string>

namespace aggspes::swa {
namespace {

const auto kAdd = [](int a, int b) { return a + b; };
const auto kCat = [](const std::string& a, const std::string& b) {
  return a + b;
};

TEST(TwoStacks, QueryEmptyReturnsIdentity) {
  TwoStacks<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.query_or(0, kAdd), 0);
}

TEST(TwoStacks, PushQueryEvict) {
  TwoStacks<int> s;
  s.push(1, kAdd);
  s.push(2, kAdd);
  s.push(3, kAdd);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.query_or(0, kAdd), 6);
  s.evict(kAdd);  // drops 1 (oldest)
  EXPECT_EQ(s.query_or(0, kAdd), 5);
  s.evict(kAdd);
  EXPECT_EQ(s.query_or(0, kAdd), 3);
  s.evict(kAdd);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.query_or(0, kAdd), 0);
}

TEST(TwoStacks, SlidingWindowMatchesNaive) {
  // FIFO of the last 5 values over a long stream; compare against a
  // recomputed sum so both the flip and mixed front/back queries run.
  TwoStacks<int> s;
  int vals[100];
  for (int i = 0; i < 100; ++i) vals[i] = i * i % 37;
  for (int i = 0; i < 100; ++i) {
    s.push(vals[i], kAdd);
    if (s.size() > 5) s.evict(kAdd);
    int naive = 0;
    for (int j = std::max(0, i - 4); j <= i; ++j) naive += vals[j];
    ASSERT_EQ(s.query_or(0, kAdd), naive) << "at i=" << i;
  }
}

TEST(TwoStacks, NonCommutativePreservesInsertionOrder) {
  TwoStacks<std::string> s;
  s.push("a", kCat);
  s.push("b", kCat);
  s.push("c", kCat);
  s.evict(kCat);  // flip happens here
  s.push("d", kCat);
  // Remaining FIFO is b, c, d: front holds {b, c}, back holds {d}.
  EXPECT_EQ(s.query_or(std::string{}, kCat), "bcd");
}

TEST(TwoStacks, InterleavedPushEvictAfterFlip) {
  TwoStacks<std::string> s;
  for (const char* v : {"1", "2", "3", "4"}) s.push(v, kCat);
  s.evict(kCat);
  s.evict(kCat);
  s.push("5", kCat);
  EXPECT_EQ(s.query_or(std::string{}, kCat), "345");
  s.evict(kCat);
  s.evict(kCat);
  EXPECT_EQ(s.query_or(std::string{}, kCat), "5");
}

TEST(TwoStacks, SnapshotRoundTripMidState) {
  // Capture with both stacks populated: derived aggregates must be
  // recomputed on load, and FIFO order preserved.
  TwoStacks<std::string> s;
  for (const char* v : {"a", "b", "c"}) s.push(v, kCat);
  s.evict(kCat);  // front = {b, c}
  s.push("d", kCat);  // back = {d}
  SnapshotWriter w;
  s.save(w);
  const auto bytes = w.take();

  TwoStacks<std::string> restored;
  SnapshotReader r(bytes);
  restored.load(r, kCat);
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.query_or(std::string{}, kCat), "bcd");
  restored.evict(kCat);
  EXPECT_EQ(restored.query_or(std::string{}, kCat), "cd");
}

TEST(TwoStacks, ClearResets) {
  TwoStacks<int> s;
  s.push(1, kAdd);
  s.push(2, kAdd);
  s.evict(kAdd);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.query_or(7, kAdd), 7);
}

}  // namespace
}  // namespace aggspes::swa
