// Five-backend equivalence under adversarial reordering (`ctest -L
// backend`): buffering, sliced-replay, monoid (two-stacks), monoid-daba
// and finger-tree must emit byte-identical (ts, value) streams with
// identical lateness bookkeeping from the same seeded reorder-injected
// script — including runs restored from a mid-stream snapshot, and
// snapshots ported across the monoid-family policies (they share one
// machine codec; caches are rebuilt, never persisted).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/swa/backends.hpp"
#include "core/swa/monoid_aggregate.hpp"

namespace aggspes {
namespace {

std::vector<Tuple<int>> random_tuples(unsigned seed, int n, Timestamp start) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 20);
  std::vector<Tuple<int>> v;
  Timestamp ts = start;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

/// Seeded reorder injector: displaces each tuple up to `k` positions
/// (locally shuffled, so some arrivals land under already-built caches)
/// and emits watermarks trailing the running max by a random slack —
/// late arrivals split between admitted re-fires and drops. Every
/// backend receives the identical element sequence.
std::vector<Element<int>> reorder_script(std::vector<Tuple<int>> tuples,
                                         int k, int wm_every,
                                         Timestamp flush_to, unsigned seed) {
  std::mt19937 rng(seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + static_cast<std::size_t>(k)));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  std::uniform_int_distribution<Timestamp> slack(0, 4);
  std::vector<Element<int>> script;
  Timestamp max_ts = kMinTimestamp;
  Timestamp last_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    script.push_back(tuples[i]);
    max_ts = std::max(max_ts, tuples[i].ts);
    if ((i + 1) % static_cast<std::size_t>(wm_every) == 0) {
      const Timestamp w = max_ts - slack(rng);
      if (w > last_wm) {
        script.push_back(Watermark{w});
        last_wm = w;
      }
    }
  }
  script.push_back(Watermark{flush_to});
  script.push_back(EndOfStream{});
  return script;
}

struct Res {
  std::multiset<std::pair<Timestamp, long>> out;
  std::uint64_t dropped;
  std::uint64_t late_updates;
};

swa::Monoid<int, long> long_sum() {
  return {0, [](const int& v) { return long{v}; },
          [](const long& a, const long& b) { return a + b; }};
}

int key_of(const int& v) { return v % 3; }

/// Factories for the five backends, all computing the same keyed sum.
template <typename AggT>
AggT& add_view_sum(Flow& f, WindowSpec spec) {
  return f.add<AggT>(spec, key_of,
                     [](const WindowView<int, int>& w) -> std::optional<long> {
                       long s = 0;
                       for (const auto& t : w.items) s += t.value;
                       return s;
                     });
}

template <typename OpT>
OpT& add_monoid_sum(Flow& f, WindowSpec spec) {
  return f.add<OpT>(spec, key_of, long_sum(),
                    [](const int&, const swa::WindowAggregate<long>& wa)
                        -> std::optional<long> { return wa.agg; });
}

using BufferingSum = AggregateOp<int, long, int>;
using SlicedSum = swa::SlicedAggregateOp<int, long, int>;
using MonoidSum = swa::MonoidAggregateOp<int, long, int, long>;
using DabaSum = swa::DabaAggregateOp<int, long, int, long>;
using FingerSum = swa::FingerTreeAggregateOp<int, long, int, long>;

template <typename AddOp>
Res run_backend(const std::vector<Element<int>>& script, AddOp add_op) {
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(script);
  auto& agg = add_op(flow);
  auto& sink = flow.add<CollectorSink<long>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  return {sink.multiset(), agg.machine().dropped_late(),
          agg.machine().late_updates()};
}

TEST(BackendEquivalence, FiveBackendsIdenticalUnderSeededReorder) {
  const std::vector<WindowSpec> specs = {
      {.advance = 1, .size = 5, .lateness = 0},
      {.advance = 4, .size = 10, .lateness = 5},
      {.advance = 5, .size = 5, .lateness = 3},     // tumbling
      {.advance = 7, .size = 3, .lateness = 0},     // sampling (WA > WS)
      {.advance = 10, .size = 25, .lateness = 40},  // everything admitted
      {.advance = 3, .size = 17, .lateness = 8},    // coprime: width-1 panes
  };
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const WindowSpec spec = specs[si];
    for (unsigned seed : {11u, 12u, 13u}) {
      auto tuples = random_tuples(seed * 5 + static_cast<unsigned>(si), 200,
                                  /*start=*/-50);
      const Timestamp flush = tuples.back().ts + spec.size + spec.lateness + 5;
      auto script = reorder_script(std::move(tuples), /*k=*/10,
                                   /*wm_every=*/7, flush, seed);
      const std::string trace =
          "spec " + std::to_string(si) + " seed " + std::to_string(seed);

      const Res buffering = run_backend(script, [&](Flow& f) -> BufferingSum& {
        return add_view_sum<BufferingSum>(f, spec);
      });
      ASSERT_GT(buffering.out.size(), 0u) << trace;
      const Res sliced = run_backend(script, [&](Flow& f) -> SlicedSum& {
        return add_view_sum<SlicedSum>(f, spec);
      });
      const Res monoid = run_backend(script, [&](Flow& f) -> MonoidSum& {
        return add_monoid_sum<MonoidSum>(f, spec);
      });
      const Res daba = run_backend(script, [&](Flow& f) -> DabaSum& {
        return add_monoid_sum<DabaSum>(f, spec);
      });
      const Res finger = run_backend(script, [&](Flow& f) -> FingerSum& {
        return add_monoid_sum<FingerSum>(f, spec);
      });

      for (const Res* r : {&sliced, &monoid, &daba, &finger}) {
        EXPECT_EQ(r->out, buffering.out) << trace;
        EXPECT_EQ(r->dropped, buffering.dropped) << trace;
        EXPECT_EQ(r->late_updates, buffering.late_updates) << trace;
      }
    }
  }
}

/// A bounded key cache must never change output — evictions drop caches,
/// not window state.
TEST(BackendEquivalence, BoundedKeyCachesDoNotChangeOutput) {
  const WindowSpec spec{.advance = 4, .size = 12, .lateness = 6};
  auto tuples = random_tuples(77, 250, -10);
  const Timestamp flush = tuples.back().ts + 40;
  auto script = reorder_script(std::move(tuples), 8, 6, flush, 77);

  const Res reference = run_backend(script, [&](Flow& f) -> BufferingSum& {
    return add_view_sum<BufferingSum>(f, spec);
  });
  const Res daba = run_backend(script, [&](Flow& f) -> DabaSum& {
    auto& op = add_monoid_sum<DabaSum>(f, spec);
    op.machine().policy().set_max_cached_keys(1);  // constant churn
    return op;
  });
  const Res finger = run_backend(script, [&](Flow& f) -> FingerSum& {
    auto& op = add_monoid_sum<FingerSum>(f, spec);
    op.machine().policy().set_max_cached_keys(1);
    return op;
  });
  EXPECT_EQ(daba.out, reference.out);
  EXPECT_EQ(finger.out, reference.out);
}

/// Snapshot a run mid-stream, restore into a fresh graph, continue: the
/// combined output must equal the uninterrupted run, for both new
/// backends and across policy swaps (monoid → daba → finger-tree).
TEST(BackendEquivalence, RestoredRunsMatchUninterrupted) {
  const WindowSpec spec{.advance = 4, .size = 8, .lateness = 4};
  auto tuples = random_tuples(5, 120, 0);
  const Timestamp flush = tuples.back().ts + 30;
  const auto script = reorder_script(std::move(tuples), 6, 5, flush, 5);

  const Res reference = run_backend(script, [&](Flow& f) -> BufferingSum& {
    return add_view_sum<BufferingSum>(f, spec);
  });
  ASSERT_GT(reference.out.size(), 0u);

  // add_a runs the prefix and snapshots; add_b restores and continues.
  auto cut_and_continue = [&](auto add_a, auto add_b, std::size_t cut) {
    std::vector<Element<int>> prefix(script.begin(),
                                     script.begin() + static_cast<long>(cut));
    std::vector<Element<int>> suffix(script.begin() + static_cast<long>(cut),
                                     script.end());
    Flow a;
    auto& a_src = a.add<ScriptSource<int>>(prefix);
    auto& a_agg = add_a(a);
    auto& a_sink = a.add<CollectorSink<long>>();
    a.connect(a_src.out(), a_agg.in());
    a.connect(a_agg.out(), a_sink.in());
    a.run();
    SnapshotWriter agg_w, sink_w;
    a_agg.snapshot_to(agg_w);
    a_sink.snapshot_to(sink_w);
    const auto agg_bytes = agg_w.take();
    const auto sink_bytes = sink_w.take();

    Flow b;
    auto& b_src = b.add<ScriptSource<int>>(suffix);
    auto& b_agg = add_b(b);
    auto& b_sink = b.add<CollectorSink<long>>();
    b.connect(b_src.out(), b_agg.in());
    b.connect(b_agg.out(), b_sink.in());
    SnapshotReader agg_r(agg_bytes), sink_r(sink_bytes);
    b_agg.restore_from(agg_r);
    b_sink.restore_from(sink_r);
    b.run();
    return b_sink.multiset();
  };

  auto mk_daba = [&](Flow& f) -> DabaSum& {
    return add_monoid_sum<DabaSum>(f, spec);
  };
  auto mk_finger = [&](Flow& f) -> FingerSum& {
    return add_monoid_sum<FingerSum>(f, spec);
  };
  auto mk_monoid = [&](Flow& f) -> MonoidSum& {
    return add_monoid_sum<MonoidSum>(f, spec);
  };

  for (std::size_t cut : {std::size_t{3}, std::size_t{41}, script.size() - 2}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    EXPECT_EQ(cut_and_continue(mk_daba, mk_daba, cut), reference.out);
    EXPECT_EQ(cut_and_continue(mk_finger, mk_finger, cut), reference.out);
    // Cross-policy restores: one codec, any member of the family.
    EXPECT_EQ(cut_and_continue(mk_monoid, mk_daba, cut), reference.out);
    EXPECT_EQ(cut_and_continue(mk_daba, mk_finger, cut), reference.out);
    EXPECT_EQ(cut_and_continue(mk_finger, mk_monoid, cut), reference.out);
  }
}

/// The snapshot knob: max_cached_keys survives the round trip (codec v2).
TEST(BackendEquivalence, SnapshotPersistsKeyCacheBound) {
  const WindowSpec spec{.advance = 2, .size = 6, .lateness = 0};
  Flow a;
  auto& agg = add_monoid_sum<DabaSum>(a, spec);
  agg.machine().policy().set_max_cached_keys(3);
  SnapshotWriter w;
  agg.snapshot_to(w);
  const auto bytes = w.take();

  Flow b;
  auto& agg2 = add_monoid_sum<DabaSum>(b, spec);
  EXPECT_EQ(agg2.machine().policy().max_cached_keys(), 0u);
  SnapshotReader r(bytes);
  agg2.restore_from(r);
  EXPECT_EQ(agg2.machine().policy().max_cached_keys(), 3u);
}

/// reset_diagnostics on the new backends clears the late probe, the
/// high-water marks and the policy's own counters (cache evictions, peak
/// cached keys, out-of-order fixups) — the PR-3 convention the registry
/// relies on when it resets between runs.
TEST(BackendEquivalence, ResetDiagnosticsClearsPolicyAndLateCounters) {
  const WindowSpec spec{.advance = 2, .size = 6, .lateness = 2};
  auto drive = [&](auto& machine) {
    using M = std::remove_reference_t<decltype(machine)>;
    typename M::FireFn fire = [](Timestamp, const int&,
                                 const swa::WindowAggregate<long>&, bool) {};
    machine.set_late_probe([](const LateEvent&) {});  // observed() counts
    machine.policy().set_max_cached_keys(1);
    Timestamp w = kMinTimestamp;
    for (int i = 0; i < 60; ++i) {
      machine.add(Tuple<int>{static_cast<Timestamp>(i), 0, i}, w, fire);
      if (i % 5 == 4) {
        w = i - 1;
        machine.advance(w, fire);
      }
    }
    // Late arrivals against the final watermark: one admitted update
    // (within L), one beyond the horizon (drop).
    machine.add(Tuple<int>{w - 1, 0, 1}, w, fire);
    machine.add(Tuple<int>{w - 40, 0, 1}, w, fire);
  };

  swa::DabaWindowMachine<int, long, int> daba(spec, key_of,
                                              swa::DabaPolicy<int, long, int>(
                                                  long_sum()));
  drive(daba);
  EXPECT_GT(daba.late_probe().observed(), 0u);
  EXPECT_GT(daba.peak_occupancy(), 0u);
  EXPECT_GT(daba.policy().cache_evictions(), 0u);
  daba.reset_diagnostics();
  EXPECT_EQ(daba.late_probe().observed(), 0u);
  EXPECT_EQ(daba.peak_occupancy(), daba.occupancy());
  EXPECT_EQ(daba.policy().cache_evictions(), 0u);
  EXPECT_EQ(daba.policy().peak_cached_keys(), daba.policy().cached_keys());

  swa::FingerTreeWindowMachine<int, long, int> finger(
      spec, key_of, swa::FingerTreePolicy<int, long, int>(long_sum()));
  drive(finger);
  EXPECT_GT(finger.late_probe().observed(), 0u);
  EXPECT_GT(finger.policy().cache_evictions(), 0u);
  finger.reset_diagnostics();
  EXPECT_EQ(finger.late_probe().observed(), 0u);
  EXPECT_EQ(finger.peak_occupancy(), finger.occupancy());
  EXPECT_EQ(finger.policy().cache_evictions(), 0u);
  EXPECT_EQ(finger.policy().ooo_fixups(), 0u);
}

/// The finger tree's reason to exist: an out-of-order absorb under a
/// built cache is a targeted fixup, not a global invalidation.
TEST(BackendEquivalence, FingerTreeCountsTargetedFixupsForLateArrivals) {
  const WindowSpec spec{.advance = 2, .size = 8, .lateness = 10};
  swa::FingerTreeWindowMachine<int, long, int> m(
      spec, key_of, swa::FingerTreePolicy<int, long, int>(long_sum()));
  typename swa::FingerTreeWindowMachine<int, long, int>::FireFn fire =
      [](Timestamp, const int&, const swa::WindowAggregate<long>&, bool) {};
  Timestamp w = kMinTimestamp;
  for (int i = 0; i < 40; ++i) {
    m.add(Tuple<int>{static_cast<Timestamp>(i), 0, 0}, w, fire);
    if (i % 4 == 3) {
      w = i - 2;
      m.advance(w, fire);  // builds per-key trees over fired ranges
    }
  }
  EXPECT_EQ(m.policy().ooo_fixups(), 0u);  // in-order: trees untouched
  // A late tuple into a pane some key's tree already covers.
  m.add(Tuple<int>{w - 6, 0, 0}, w, fire);
  EXPECT_GT(m.policy().ooo_fixups(), 0u);
  EXPECT_GT(m.late_updates(), 0u);
}

}  // namespace
}  // namespace aggspes
