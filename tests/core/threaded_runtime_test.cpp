// Tests for the physical runtime: SPSC queues, the thread-per-node
// executor (including loop channels), and the rate source / measuring sink
// instrumentation.
#include "core/runtime/threaded_runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "aggbased/flatmap.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"
#include "core/runtime/measuring_sink.hpp"
#include "core/runtime/rate_source.hpp"
#include "core/runtime/spsc_queue.hpp"

namespace aggspes {
namespace {

TEST(SpscQueue, PushPopSingleThread) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(SpscQueue, FullQueueRejectsPush) {
  SpscQueue<int> q(2);  // capacity rounds to 2
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  int v;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(3));
}

TEST(SpscQueue, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(SpscQueue, FailedTryPushLeavesValueIntact) {
  // Regression test: a failed try_push must not consume (move from) the
  // value — blocking push retries the same object until space frees up.
  SpscQueue<std::vector<int>> q(2);
  ASSERT_TRUE(q.try_push(std::vector<int>{1}));
  ASSERT_TRUE(q.try_push(std::vector<int>{2}));
  std::vector<int> v{3, 4, 5};
  EXPECT_FALSE(q.try_push(std::move(v)));
  EXPECT_EQ(v.size(), 3u);  // untouched by the failed attempt
  std::vector<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_TRUE(q.try_push(std::move(v)));
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5}));
}

TEST(SpscQueue, BlockingPushUnderBackpressureNeverCorrupts) {
  // Move-aware payloads crossing a tiny (constantly full) queue must
  // arrive intact — the bug class that only shows up under backpressure.
  SpscQueue<std::vector<int>> q(2);
  constexpr int kN = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.push(std::vector<int>{i, i + 1});
  });
  int received = 0;
  int corrupted = 0;
  while (received < kN) {
    std::vector<int> v;
    if (q.try_pop(v)) {
      if (v.size() != 2 || v[0] != received || v[1] != received + 1) {
        ++corrupted;
      }
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(corrupted, 0);
}

TEST(SpscQueue, TwoThreadStressPreservesSequence) {
  SpscQueue<int> q(64);
  constexpr int kN = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.push(int(i));
  });
  long long sum = 0;
  int expected_next = 0;
  bool in_order = true;
  for (int received = 0; received < kN;) {
    int v;
    if (q.try_pop(v)) {
      in_order &= (v == expected_next++);
      sum += v;
      ++received;
    }
  }
  producer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

std::vector<Element<int>> ints_script(int n) {
  std::vector<Element<int>> s;
  for (int i = 0; i < n; ++i) s.push_back(Tuple<int>{Timestamp(i), 0, i});
  s.push_back(Watermark{Timestamp(n)});
  s.push_back(EndOfStream{});
  return s;
}

TEST(ThreadedFlow, LinearPipelineDeliversEverything) {
  ThreadedFlow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script(1000));
  auto& fm = flow.add<FlatMapOp<int, int>>(
      [](const int& v) { return std::vector<int>{v, v}; });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), fm, fm.in());
  flow.connect(fm, fm.out(), sink, sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 2000u);
  EXPECT_TRUE(sink.ended());
}

TEST(ThreadedFlow, BackpressureOnTinyChannels) {
  ThreadedFlow flow;
  auto& src = flow.add<ScriptSource<int>>(ints_script(5000));
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), sink, sink.in(), EdgeKind::kNormal,
               /*capacity=*/4);
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 5000u);
}

TEST(ThreadedFlow, AggBasedFlatMapWithLoopMatchesDedicated) {
  // The full X loop (Listings 3-5) under the threaded runtime must produce
  // the same outputs as the dedicated FM.
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 200; ++ts) in.push_back({ts, 0, int(ts % 17)});
  auto fm = [](const int& v) {
    std::vector<int> outs;
    for (int i = 0; i < v % 4; ++i) outs.push_back(v * 10 + i);
    return outs;
  };

  // Dedicated, single-threaded reference.
  Flow ref;
  auto& rsrc = ref.add<TimedSource<int>>(in, 5, 230);
  auto& rop = ref.add<FlatMapOp<int, int>>(fm);
  auto& rsink = ref.add<CollectorSink<int>>();
  ref.connect(rsrc.out(), rop.in());
  ref.connect(rop.out(), rsink.in());
  ref.run();

  // AggBased, threaded.
  ThreadedFlow flow;
  auto& src = flow.add<TimedSource<int>>(in, 5, 230);
  AggBasedFlatMap<int, int> op(flow, fm, /*lateness=*/5);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), op.in_node(), op.in());
  flow.connect(op.out_node(), op.out(), sink, sink.in());
  flow.run();

  EXPECT_EQ(sink.multiset(), rsink.multiset());
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_TRUE(sink.ended());
}

TEST(RateSource, EmitsTargetCountAndC1Watermarks) {
  ThreadedFlow flow;
  RateSourceConfig cfg{.rate = 20000,
                       .duration_s = 0.1,
                       .ticks_per_s = 1000,
                       .wm_period = 10,
                       .flush_horizon = 100,
                       // Disable the overload cutoff: on a contended CI
                       // host the generator may fall behind wall clock,
                       // but this test asserts the exact tuple count.
                       .overrun_factor = 1000.0};
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 2000u);
  EXPECT_EQ(src.emitted(), 2000u);
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_EQ(sink.watermark_regressions(), 0);
  // C1: consecutive watermarks at most wm_period apart.
  const auto& wms = sink.watermarks();
  ASSERT_GE(wms.size(), 2u);
  for (std::size_t i = 1; i < wms.size(); ++i) {
    EXPECT_LE(wms[i] - wms[i - 1], 10);
  }
  EXPECT_GE(wms.back(), 200);  // flushed past the end
}

TEST(MeasuringSink, RecordsLatencyAgainstStamp) {
  ThreadedFlow flow;
  const std::uint64_t t0 = now_ns();
  auto& src = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
      Tuple<int>{0, t0, 1}, Tuple<int>{1, t0, 2}, EndOfStream{}});
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();
  EXPECT_EQ(sink.count(), 2u);
  auto s = sink.summarize(0, ~0ull);
  EXPECT_EQ(s.count, 2u);
  EXPECT_GT(s.max_ms, 0.0);
}

}  // namespace
}  // namespace aggspes
