// Overload-control unit suite (ctest label: overload): OverloadMonitor
// classification, the four ShedPolicy semantics (deterministic per seed),
// shedder hooks at RateSource / WindowMachine / SlicedEngine admission,
// RateSource cutoff accounting, recovery backoff math, and the
// degraded-mode prober's ladder logic. End-to-end behavior under injected
// faults lives in tests/recovery/overload_chaos_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/operators/window_machine.hpp"
#include "core/recovery/supervisor.hpp"
#include "core/runtime/measuring_sink.hpp"
#include "core/runtime/overload.hpp"
#include "core/runtime/rate_source.hpp"
#include "core/runtime/threaded_runtime.hpp"
#include "core/swa/shared_lattice.hpp"
#include "core/swa/sliced_machine.hpp"
#include "harness/sustainable.hpp"

namespace aggspes {
namespace {

// --- OverloadMonitor classification --------------------------------------

TEST(OverloadMonitor, ClassifiesFromOccupancy) {
  OverloadMonitor m({.pressured_occupancy = 0.5, .overloaded_occupancy = 0.9});
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);

  m.observe({{10, 100, 0, 10}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);

  m.observe({{60, 100, 0, 60}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kPressured);

  m.observe({{95, 100, 0, 95}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kOverloaded);

  // Recovery: health tracks the current sample; worst() remembers.
  m.observe({{0, 100, 0, 95}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);
  EXPECT_EQ(m.worst(), FlowHealth::kOverloaded);
  EXPECT_EQ(m.samples(), 4u);
  EXPECT_EQ(m.transitions(), 3u);  // H→P, P→O, O→H
  EXPECT_DOUBLE_EQ(m.peak_occupancy_fraction(), 0.95);
}

TEST(OverloadMonitor, WorstOccupancyChannelWins) {
  OverloadMonitor m;
  // One idle channel and one nearly full one: classification follows the
  // max fraction, not the average.
  m.observe({{0, 100, 0, 0}, {95, 100, 0, 95}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kOverloaded);
}

TEST(OverloadMonitor, LoopChannelsExcludedFromOccupancy) {
  OverloadMonitor m;
  // capacity == 0 marks an unbounded loop edge; its depth is not an
  // occupancy fraction.
  m.observe({{5000, 0, 0, 5000}}, 0, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);
}

TEST(OverloadMonitor, ClassifiesFromWatermarkLag) {
  OverloadMonitor m({.pressured_occupancy = 0.5,
                     .overloaded_occupancy = 0.9,
                     .pressured_lag = 100,
                     .overloaded_lag = 500});
  m.observe({}, 1000, 950);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);
  m.observe({}, 1000, 800);
  EXPECT_EQ(m.health(), FlowHealth::kPressured);
  m.observe({}, 1000, 100);
  EXPECT_EQ(m.health(), FlowHealth::kOverloaded);
  EXPECT_EQ(m.peak_watermark_lag(), 900);
  // A laggard that has no watermark yet contributes no lag.
  m.observe({}, 1000, kMinTimestamp);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);
}

TEST(OverloadMonitor, ZeroLagThresholdDisablesLagClassification) {
  OverloadMonitor m;  // default thresholds: lag disabled
  m.observe({}, 1'000'000, 0);
  EXPECT_EQ(m.health(), FlowHealth::kHealthy);
}

// --- Shedder policies ----------------------------------------------------

TEST(Shedder, NonePolicyAdmitsEverything) {
  Shedder s(ShedConfig{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(s.admit(FlowHealth::kOverloaded, i, i));
  }
  EXPECT_EQ(s.shed(), 0u);
  EXPECT_EQ(s.admitted(), 1000u);
}

TEST(Shedder, HealthyNeverSheds) {
  Shedder s({.policy = ShedPolicy::kRandomP,
             .p_pressured = 1.0,
             .p_overloaded = 1.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(s.admit(FlowHealth::kHealthy, i, i));
  }
  EXPECT_EQ(s.shed(), 0u);
}

TEST(Shedder, RandomPShedsAtConfiguredProbability) {
  Shedder s({.policy = ShedPolicy::kRandomP, .p_overloaded = 0.3, .seed = 7});
  const int n = 20000;
  for (int i = 0; i < n; ++i) s.admit(FlowHealth::kOverloaded, i, i);
  const double ratio = static_cast<double>(s.shed()) / n;
  EXPECT_NEAR(ratio, 0.3, 0.02);
}

TEST(Shedder, RandomPIsDeterministicPerSeed) {
  ShedConfig cfg{.policy = ShedPolicy::kRandomP, .p_overloaded = 0.5,
                 .seed = 11};
  Shedder a(cfg);
  Shedder b(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.admit(FlowHealth::kOverloaded, i, i),
              b.admit(FlowHealth::kOverloaded, i, i));
  }
}

TEST(Shedder, PerKeyFairIsCoherentWithinAnEpochAndRotatesAcross) {
  ShedConfig cfg{.policy = ShedPolicy::kPerKeyFair,
                 .p_overloaded = 0.5,
                 .seed = 3,
                 .fair_epoch = 100};
  Shedder s(cfg);
  // Within one epoch the decision for a key never flips (all-or-nothing
  // window contents per key).
  for (std::uint64_t key = 0; key < 64; ++key) {
    const bool first = s.admit(FlowHealth::kOverloaded, key, 0);
    for (Timestamp ts = 1; ts < 100; ts += 13) {
      EXPECT_EQ(s.admit(FlowHealth::kOverloaded, key, ts), first);
    }
  }
  // Across epochs the victim set rotates: some key flips.
  bool any_flip = false;
  for (std::uint64_t key = 0; key < 64 && !any_flip; ++key) {
    Shedder t(cfg);
    any_flip = t.admit(FlowHealth::kOverloaded, key, 50) !=
               t.admit(FlowHealth::kOverloaded, key, 150);
  }
  EXPECT_TRUE(any_flip);
  // And roughly p of the keys are shed per epoch.
  Shedder u(cfg);
  int shed = 0;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    if (!u.admit(FlowHealth::kOverloaded, splitmix64(key), 0)) ++shed;
  }
  EXPECT_NEAR(static_cast<double>(shed) / 2000, 0.5, 0.05);
}

TEST(Shedder, OldestPaneFirstShedsBehindTheWatermark) {
  Shedder s({.policy = ShedPolicy::kOldestPaneFirst, .pane_depth = 50});
  // No watermark yet: everything admitted regardless of health.
  EXPECT_TRUE(s.admit(FlowHealth::kOverloaded, 1, 0, kMinTimestamp));
  // Pressured: only tuples at or behind the watermark are shed.
  EXPECT_FALSE(s.admit(FlowHealth::kPressured, 1, 100, 100));
  EXPECT_TRUE(s.admit(FlowHealth::kPressured, 1, 101, 100));
  // Overloaded: the shed horizon deepens by pane_depth.
  EXPECT_FALSE(s.admit(FlowHealth::kOverloaded, 1, 150, 100));
  EXPECT_TRUE(s.admit(FlowHealth::kOverloaded, 1, 151, 100));
  // Healthy: never sheds.
  EXPECT_TRUE(s.admit(FlowHealth::kHealthy, 1, 0, 100));
}

TEST(Shedder, ConsultsAttachedMonitor) {
  OverloadMonitor m;
  Shedder s({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);
  EXPECT_TRUE(s.admit(1, 0));  // monitor healthy
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);  // force overloaded
  EXPECT_FALSE(s.admit(1, 0));
  EXPECT_EQ(s.shed(), 1u);
  EXPECT_EQ(s.admitted(), 1u);
}

// --- Operator admission hooks --------------------------------------------

TEST(WindowMachineShedding, ShedsAtAdmissionUnderOverload) {
  OverloadMonitor m;
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);  // overloaded
  Shedder shed({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);

  WindowMachine<int, int> wm({.advance = 10, .size = 10}, [](int v) {
    return v % 2;
  });
  wm.set_shedder(&shed);
  int fired = 0;
  const auto fire = [&](Timestamp, const int&, const std::vector<Tuple<int>>&,
                        bool) { ++fired; };
  for (int i = 0; i < 20; ++i) {
    wm.add({i, 0, i}, kMinTimestamp, fire);
  }
  EXPECT_EQ(wm.shed(), 20u);
  EXPECT_EQ(wm.open_instances(), 0u);
  wm.advance(100, fire);
  EXPECT_EQ(fired, 0);

  // Without the shedder the same tuples land.
  WindowMachine<int, int> base({.advance = 10, .size = 10}, [](int v) {
    return v % 2;
  });
  for (int i = 0; i < 20; ++i) base.add({i, 0, i}, kMinTimestamp, fire);
  EXPECT_GT(base.open_instances(), 0u);
}

TEST(SlicedEngineShedding, ShedsAtAdmissionUnderOverload) {
  OverloadMonitor m;
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);
  Shedder shed({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);

  swa::SlicedWindowMachine<int, int> eng({.advance = 5, .size = 10},
                                         [](int v) { return v % 2; });
  eng.set_shedder(&shed);
  int fired = 0;
  const auto fire = [&](Timestamp, const int&, const std::vector<Tuple<int>>&,
                        bool) { ++fired; };
  for (int i = 0; i < 20; ++i) eng.add({i, 0, i}, kMinTimestamp, fire);
  EXPECT_EQ(eng.shed(), 20u);
  EXPECT_EQ(eng.open_panes(), 0u);
  eng.advance(100, fire);
  EXPECT_EQ(fired, 0);
}

// --- RateSource: shedding + cutoff accounting ----------------------------

TEST(RateSourceOverload, CutoffRecordedNotSilent) {
  // 50 tuples scheduled over 50 ms, but the cutoff caps wall time at
  // 25 ms: generation truncates at the midpoint and says so.
  RateSourceConfig cfg{.rate = 1000,
                       .duration_s = 0.05,
                       .ticks_per_s = 1000,
                       .wm_period = 10,
                       .flush_horizon = 50,
                       .overrun_factor = 0.5};
  ThreadedFlow flow;
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();

  EXPECT_EQ(src.cutoff_fired(), 1u);
  EXPECT_NEAR(src.cutoff_at_s(), 0.025, 0.005);
  EXPECT_LT(src.emitted(), 50u);
  EXPECT_GT(src.emitted(), 0u);
}

TEST(RateSourceOverload, NoCutoffOnSustainableRun) {
  RateSourceConfig cfg{.rate = 1000, .duration_s = 0.05, .wm_period = 10};
  ThreadedFlow flow;
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();
  EXPECT_EQ(src.cutoff_fired(), 0u);
  EXPECT_EQ(src.emitted(), 50u);
}

TEST(RateSourceOverload, SheddingKeepsWatermarksFlowing) {
  OverloadMonitor m;
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);  // pinned overloaded
  Shedder shed({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);

  RateSourceConfig cfg{.rate = 2000, .duration_s = 0.05, .wm_period = 10};
  ThreadedFlow flow;
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  src.set_shedder(&shed);
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();

  // Every generated tuple was shed, none emitted...
  EXPECT_EQ(src.emitted(), 0u);
  EXPECT_EQ(shed.shed(), 100u);
  // ...yet watermarks advanced all the way to the flush horizon, so
  // downstream event time stayed well-defined.
  const Timestamp end_ts = static_cast<Timestamp>(
      cfg.duration_s * static_cast<double>(cfg.ticks_per_s));
  EXPECT_EQ(sink.node_watermark(), end_ts + cfg.flush_horizon);
}

// --- Runtime gauges ------------------------------------------------------

TEST(ChannelGauges, HighWaterAndCapacityExported) {
  ThreadedFlow flow;
  RateSourceConfig cfg{.rate = 5000, .duration_s = 0.02, .wm_period = 10};
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in(), EdgeKind::kNormal,
               /*capacity=*/64);
  flow.run();
  const auto gauges = flow.channel_gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].capacity, 64u);
  EXPECT_GT(gauges[0].high_water, 0u);
  EXPECT_EQ(gauges[0].depth, 0u);  // drained at end of run
}

TEST(OverloadMonitorIntegration, WatchdogSamplesAttachedMonitor) {
  OverloadMonitor monitor;
  ThreadedFlow flow;
  RateSourceConfig cfg{.rate = 2000, .duration_s = 0.05, .wm_period = 10};
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i);
  });
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.attach_overload(&monitor);
  ThreadedFlow::RunOptions opts;
  opts.watchdog_poll = std::chrono::milliseconds(5);
  flow.run(opts);
  EXPECT_GT(monitor.samples(), 0u);
  EXPECT_EQ(monitor.worst(), FlowHealth::kHealthy);
}

// --- Recovery backoff math -----------------------------------------------

TEST(RecoveryBackoff, DisabledByDefault) {
  RecoveryOptions opts;
  EXPECT_EQ(recovery_backoff(opts, 1).count(), 0);
  EXPECT_EQ(recovery_backoff(opts, 5).count(), 0);
}

TEST(RecoveryBackoff, ExponentialWithCap) {
  RecoveryOptions opts;
  opts.backoff_initial = std::chrono::milliseconds(10);
  opts.backoff_factor = 2.0;
  opts.backoff_max = std::chrono::milliseconds(50);
  EXPECT_EQ(recovery_backoff(opts, 0).count(), 0);   // first try never waits
  EXPECT_EQ(recovery_backoff(opts, 1).count(), 10);  // 10 * 2^0
  EXPECT_EQ(recovery_backoff(opts, 2).count(), 20);
  EXPECT_EQ(recovery_backoff(opts, 3).count(), 40);
  EXPECT_EQ(recovery_backoff(opts, 4).count(), 50);  // capped
}

TEST(RecoveryBackoff, JitterIsDeterministicAndBounded) {
  RecoveryOptions opts;
  opts.backoff_initial = std::chrono::milliseconds(100);
  opts.jitter = 0.5;
  opts.jitter_seed = 99;
  const auto a = recovery_backoff(opts, 3);
  const auto b = recovery_backoff(opts, 3);
  EXPECT_EQ(a.count(), b.count());  // same seed ⇒ same delay
  EXPECT_GE(a.count(), 200);        // 400 * (1 - 0.5)
  EXPECT_LE(a.count(), 600);        // 400 * (1 + 0.5)
  opts.jitter_seed = 100;
  const auto c = recovery_backoff(opts, 3);
  EXPECT_NE(a.count(), c.count());  // different seed ⇒ different jitter
}

// --- Degraded-mode prober ladder logic -----------------------------------

TEST(ProbeDegraded, ReportsBestRateWithinBoundAndStopsAfterTwoMisses) {
  // Synthetic runner: p99 grows with rate; shed ratio reported honestly.
  std::vector<double> probed;
  harness::RateRunner runner = [&](double rate) {
    probed.push_back(rate);
    harness::RunResult r;
    r.offered_per_s = rate;
    r.achieved_per_s = rate;
    r.latency.count = 100;
    r.latency.p99_ms = rate / 1000.0;  // bound of 3 ⇒ ok through 3000
    r.shed_ratio = rate > 2000 ? 0.25 : 0.0;
    return r;
  };
  const auto res = harness::probe_degraded(
      runner, {1000, 2000, 3000, 4000, 5000, 6000, 7000}, 3.0);
  EXPECT_DOUBLE_EQ(res.max_rate_within_bound, 3000);
  EXPECT_DOUBLE_EQ(res.best.shed_ratio, 0.25);
  // Stops after two consecutive out-of-bound rates: 4000, 5000 probed,
  // 6000+ not.
  ASSERT_EQ(probed.size(), 5u);
  EXPECT_DOUBLE_EQ(probed.back(), 5000);
  EXPECT_EQ(res.ladder.size(), 5u);
  EXPECT_TRUE(res.ladder[2].within_bound);
  EXPECT_FALSE(res.ladder[3].within_bound);
}

TEST(ProbeDegraded, EmptyWhenNothingWithinBound) {
  harness::RateRunner runner = [](double) {
    harness::RunResult r;
    r.latency.count = 10;
    r.latency.p99_ms = 1e9;
    return r;
  };
  const auto res = harness::probe_degraded(runner, {100, 200, 300}, 1.0);
  EXPECT_DOUBLE_EQ(res.max_rate_within_bound, 0);
  EXPECT_EQ(res.ladder.size(), 2u);  // stopped after two misses
}

// --- Per-key shed accounting ---------------------------------------------

TEST(ShedAccounting, PerKeyCountsSumToTotalAndOmitUnshedKeys) {
  Shedder s({.policy = ShedPolicy::kRandomP, .p_overloaded = 0.5, .seed = 5});
  // Skewed traffic: key 0 hot, keys 1..9 cold; healthy traffic on key 42
  // must never appear in the map.
  for (int i = 0; i < 2000; ++i) {
    s.admit(FlowHealth::kOverloaded, static_cast<std::uint64_t>(i % 10 == 0
                                                                    ? 0
                                                                    : i % 10),
            i);
    s.admit(FlowHealth::kHealthy, 42, i);
  }
  std::uint64_t sum = 0;
  for (const auto& [key, n] : s.shed_by_key()) {
    EXPECT_NE(key, 42u);
    EXPECT_GT(n, 0u);
    sum += n;
  }
  EXPECT_EQ(sum, s.shed());
  EXPECT_GT(s.shed(), 0u);
}

TEST(ShedAccounting, RankIsDeterministicWithTieBreakAndTruncation) {
  const std::unordered_map<std::uint64_t, std::uint64_t> m = {
      {7, 30}, {3, 30}, {9, 100}, {1, 5}, {4, 1}};
  const auto top = Shedder::rank_shed_keys(m, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (std::pair<std::uint64_t, std::uint64_t>{9, 100}));
  // Equal counts rank by key hash ascending — stable across runs.
  EXPECT_EQ(top[1], (std::pair<std::uint64_t, std::uint64_t>{3, 30}));
  EXPECT_EQ(top[2], (std::pair<std::uint64_t, std::uint64_t>{7, 30}));
  // k beyond the population returns everything, no padding.
  EXPECT_EQ(Shedder::rank_shed_keys(m, 99).size(), 5u);
  EXPECT_TRUE(Shedder::rank_shed_keys({}, 4).empty());
}

TEST(ShedAccounting, PerKeyFairShedsWholeKeysVisibleInAccounting) {
  // kPerKeyFair's promise is all-or-nothing per key within an epoch; the
  // per-key map makes that auditable: a shed key's count equals its
  // arrivals, an admitted key is absent.
  Shedder s({.policy = ShedPolicy::kPerKeyFair,
             .p_overloaded = 0.5,
             .seed = 3,
             .fair_epoch = 1000});
  constexpr int kPerKey = 37;
  for (std::uint64_t key = 0; key < 64; ++key) {
    for (int i = 0; i < kPerKey; ++i) {
      s.admit(FlowHealth::kOverloaded, splitmix64(key), i % 1000);
    }
  }
  EXPECT_FALSE(s.shed_by_key().empty());
  for (const auto& [key, n] : s.shed_by_key()) {
    EXPECT_EQ(n, static_cast<std::uint64_t>(kPerKey)) << key;
  }
  const auto top = s.top_shed_keys(harness::kShedTopK);
  EXPECT_EQ(top.size(), std::min<std::size_t>(harness::kShedTopK,
                                              s.shed_by_key().size()));
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST(ShedAccounting, SourceGatedShedderPopulatesTopKeys) {
  // End-to-end through the admission hook: a pinned-overloaded
  // source-gated shedder accumulates the per-key map the harness copies
  // into RunResult::shed_top_keys (run_fm_t / run_join_t).
  OverloadMonitor m;
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);  // pinned overloaded
  Shedder shed({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);

  RateSourceConfig cfg{.rate = 2000, .duration_s = 0.05, .wm_period = 10};
  ThreadedFlow flow;
  auto& src = flow.add<RateSource<int>>(cfg, [](std::uint64_t i) {
    return static_cast<int>(i % 5);
  });
  src.set_shedder(&shed);
  auto& sink = flow.add<MeasuringSink<int>>();
  flow.connect(src, src.out(), sink, sink.in());
  flow.run();

  ASSERT_GT(shed.shed(), 0u);
  const auto top = shed.top_shed_keys(harness::kShedTopK);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), harness::kShedTopK);
  std::uint64_t sum = 0;
  for (const auto& [key, n] : shed.shed_by_key()) sum += n;
  EXPECT_EQ(sum, shed.shed());
}

TEST(ShedAccounting, PerQueryAttributionAccumulates) {
  OverloadMonitor m;
  Shedder shed({.policy = ShedPolicy::kRandomP}, &m);
  shed.attribute_query(0, 2);
  shed.attribute_query(2);
  EXPECT_EQ(shed.shed_for_query(0), 2u);
  EXPECT_EQ(shed.shed_for_query(1), 0u);
  EXPECT_EQ(shed.shed_for_query(2), 1u);
  EXPECT_EQ(shed.shed_by_query().size(), 2u);
}

TEST(ShedAccounting, SharedLatticeChargesDropsToCoveredQueriesOnly) {
  // The shared lattice makes ONE store-level drop decision per tuple and
  // charges it only to queries whose instance set contains the tuple: a
  // tuple in query 1's WA > WS sampling gap sheds nothing from query 1.
  OverloadMonitor m;
  m.observe({{100, 100, 0, 100}}, 0, kMinTimestamp);  // pinned overloaded
  Shedder shed({.policy = ShedPolicy::kRandomP, .p_overloaded = 1.0}, &m);
  swa::MonoidLattice<int, long, int> lattice(
      {{.advance = 1, .size = 5, .lateness = 0},
       {.advance = 10, .size = 2, .lateness = 0}},
      [](const int& v) { return v; },
      swa::LatticeMonoidPolicy<int, long, int>(swa::Monoid<int, long>{
          0, [](const int& v) { return long{v}; },
          [](const long& a, const long& b) { return a + b; }}));
  lattice.set_shedder(&shed);
  const auto fire = [](int, Timestamp, const int&,
                       const swa::WindowAggregate<long>&, bool) {};
  lattice.add({5, 0, 1}, kMinTimestamp, fire);   // gap for query 1
  lattice.add({11, 0, 1}, kMinTimestamp, fire);  // inside [10, 12)
  EXPECT_EQ(shed.shed(), 2u);
  EXPECT_EQ(lattice.shed_for_query(0), 2u);
  EXPECT_EQ(lattice.shed_for_query(1), 1u);
  EXPECT_EQ(lattice.open_panes(), 0u) << "refused tuples must not store";
}

TEST(LateProbe, StampsConfiguredQueryOnSampledEvents) {
  LateProbe probe;
  probe.set_query(7);
  std::vector<LateEvent> seen;
  probe.set([&](const LateEvent& e) { seen.push_back(e); }, /*every=*/1);
  probe({.instance = 10, .tuple_ts = 3, .watermark = 20, .dropped = true});
  probe({.instance = 14, .tuple_ts = 9, .watermark = 20, .dropped = false});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].query, 7);
  EXPECT_EQ(seen[1].query, 7);
  EXPECT_TRUE(seen[0].dropped);
  EXPECT_FALSE(seen[1].dropped);
  EXPECT_EQ(probe.observed(), 2u);
}

}  // namespace
}  // namespace aggspes
