// Unit tests for the metrics/latency machinery and the report formatting.
#include "core/runtime/metrics.hpp"

#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "harness/sustainable.hpp"

namespace aggspes {
namespace {

TEST(LatencyRecorder, SummarizesQuantiles) {
  LatencyRecorder rec;
  // 100 samples: 1ms .. 100ms.
  for (int i = 1; i <= 100; ++i) {
    rec.record(static_cast<std::uint64_t>(i) * 1'000'000ull);
  }
  auto s = rec.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_ms, 50.0, 1.5);
  EXPECT_NEAR(s.p99_ms, 99.0, 1.5);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.mean_ms, 50.5, 0.01);
}

TEST(LatencyRecorder, EmptySummary) {
  LatencyRecorder rec;
  auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(LatencyRecorder, SingleSample) {
  LatencyRecorder rec;
  rec.record(2'000'000);
  auto s = rec.summarize();
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 2.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 2.0);
}

TEST(ReportFormat, Rates) {
  using harness::fmt_rate;
  EXPECT_EQ(fmt_rate(950), "950");
  EXPECT_EQ(fmt_rate(12'345), "12.3k");
  EXPECT_EQ(fmt_rate(2'500'000), "2.50M");
}

TEST(ReportFormat, Milliseconds) {
  using harness::fmt_ms;
  EXPECT_EQ(fmt_ms(0.5), "0.500ms");
  EXPECT_EQ(fmt_ms(12.34), "12.3ms");
  EXPECT_EQ(fmt_ms(2500), "2.50s");
}

TEST(ReportFormat, Selectivity) {
  using harness::fmt_selectivity;
  EXPECT_EQ(fmt_selectivity(0), "0");
  EXPECT_EQ(fmt_selectivity(1.0), "1.00");
  EXPECT_EQ(fmt_selectivity(0.0005), "5.0e-04");
}

TEST(SustainableSearch, PicksHighestSuccessfulRate) {
  using namespace harness;
  // Synthetic runner: latency explodes past 1000 t/s.
  RateRunner runner = [](double rate) {
    RunResult r;
    r.offered_per_s = rate;
    r.achieved_per_s = rate <= 1000 ? rate : 1000;
    r.latency.count = 10;
    r.latency.p99_ms = rate <= 1000 ? 50 : 5000;
    return r;
  };
  auto s = find_max_sustainable(runner, {250, 500, 1000, 2000, 4000, 8000},
                                /*p99_bound_ms=*/500);
  EXPECT_DOUBLE_EQ(s.max_sustainable, 1000);
  // Two consecutive failures stop the ladder early: 2000 and 4000 fail,
  // 8000 is never probed.
  EXPECT_EQ(s.ladder.size(), 5u);
  EXPECT_TRUE(s.ladder[2].success);
  EXPECT_FALSE(s.ladder[3].success);
}

TEST(SustainableSearch, SlowSourceCountsAsFailure) {
  using namespace harness;
  // Latency fine but the source cannot keep its schedule: not sustainable.
  RateRunner runner = [](double rate) {
    RunResult r;
    r.offered_per_s = rate;
    r.achieved_per_s = rate * 0.5;
    r.latency.count = 10;
    r.latency.p99_ms = 1;
    return r;
  };
  auto s = find_max_sustainable(runner, {100, 200, 400}, 500);
  EXPECT_DOUBLE_EQ(s.max_sustainable, 0);
}

}  // namespace
}  // namespace aggspes
