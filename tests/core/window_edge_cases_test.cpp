// Edge cases of the windowing model: hopping windows with gaps (WA > WS),
// negative event times (epochs before the reference origin), and
// degenerate δ-sized windows — all legal under § 2.1's Γ definition.
#include <gtest/gtest.h>

#include <vector>

#include "aggbased/flatmap.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

using CountAgg = AggregateOp<int, int, int>;

CountAgg::AggFn count_items() {
  return [](const WindowView<int, int>& w) -> std::optional<int> {
    return static_cast<int>(w.items.size());
  };
}

TEST(HoppingWindows, TuplesInGapsBelongToNoInstance) {
  // WA = 10, WS = 5: instances cover [0,5), [10,15), ... — event times in
  // [5,10) fall in no window and must silently contribute nothing.
  WindowSpec spec{.advance = 10, .size = 5};
  EXPECT_TRUE(spec.instances(7).empty());
  EXPECT_EQ(spec.instances(3), (std::vector<Timestamp>{0}));
  EXPECT_EQ(spec.instances(12), (std::vector<Timestamp>{10}));

  Flow flow;
  std::vector<Tuple<int>> in{{3, 0, 1}, {7, 0, 2}, {12, 0, 3}, {8, 0, 4}};
  auto& src = flow.add<TimedSource<int>>(in, 5, 30);
  auto& agg = flow.add<CountAgg>(spec, [](const int&) { return 0; },
                                 count_items());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  // Only [0,5) (one tuple) and [10,15) (one tuple) produce results.
  auto m = sink.multiset();
  std::multiset<std::pair<Timestamp, int>> expected{{4, 1}, {14, 1}};
  EXPECT_EQ(m, expected);
}

TEST(NegativeEventTimes, WindowsAlignCorrectlyBeforeTheEpoch) {
  WindowSpec spec{.advance = 10, .size = 10};
  EXPECT_EQ(spec.instances(-1), (std::vector<Timestamp>{-10}));
  EXPECT_EQ(spec.instances(-10), (std::vector<Timestamp>{-10}));
  EXPECT_EQ(spec.instances(-11), (std::vector<Timestamp>{-20}));

  Flow flow;
  std::vector<Tuple<int>> in{{-15, 0, 1}, {-12, 0, 2}, {-5, 0, 3}};
  auto& src = flow.add<TimedSource<int>>(in, 5, 10);
  auto& agg = flow.add<CountAgg>(spec, [](const int&) { return 0; },
                                 count_items());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  auto m = sink.multiset();
  // [-20,-10): two tuples, output τ = -11; [-10,0): one tuple, τ = -1.
  std::multiset<std::pair<Timestamp, int>> expected{{-11, 2}, {-1, 1}};
  EXPECT_EQ(m, expected);
}

TEST(NegativeEventTimes, AggBasedFlatMapWorksBelowZero) {
  std::vector<Tuple<int>> in{{-9, 0, 1}, {-4, 0, 2}, {0, 0, 3}, {5, 0, 4}};
  FlatMapFn<int, int> fm = [](const int& v) {
    return std::vector<int>{v, -v};
  };

  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(in, 4, 20);
  auto& d_op = ded.add<FlatMapOp<int, int>>(fm);
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_op.in());
  ded.connect(d_op.out(), d_sink.in());
  ded.run();

  Flow agg;
  auto& a_src = agg.add<TimedSource<int>>(in, 4, 20);
  AggBasedFlatMap<int, int> a_op(agg, fm, 4);
  auto& a_sink = agg.add<CollectorSink<int>>();
  agg.connect(a_src.out(), a_op.in());
  agg.connect(a_op.out(), a_sink.in());
  agg.run();

  EXPECT_EQ(a_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(a_sink.tuples().size(), 8u);
}

TEST(DeltaWindows, SingleTickWindowsFireEveryTick) {
  WindowSpec spec{.advance = kDelta, .size = kDelta};
  Flow flow;
  std::vector<Tuple<int>> in{{0, 0, 1}, {0, 0, 2}, {1, 0, 3}, {3, 0, 4}};
  auto& src = flow.add<TimedSource<int>>(in, 2, 8);
  auto& agg = flow.add<CountAgg>(spec, [](const int&) { return 0; },
                                 count_items());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  auto m = sink.multiset();
  // Ticks 0 (2 tuples), 1 (1), 3 (1); tick 2 has no window instance
  // content. Output τ = γ.l (Lemma 1).
  std::multiset<std::pair<Timestamp, int>> expected{{0, 2}, {1, 1}, {3, 1}};
  EXPECT_EQ(m, expected);
}

TEST(LargeSlide, WindowsLargerThanWatermarkPeriod) {
  // WS much larger than D: instances accumulate across many watermark
  // rounds before closing.
  WindowSpec spec{.advance = 50, .size = 100};
  Flow flow;
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 100; ts += 10) in.push_back({ts, 0, 1});
  auto& src = flow.add<TimedSource<int>>(in, 7, 230);
  auto& agg = flow.add<CountAgg>(spec, [](const int&) { return 0; },
                                 count_items());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  // Instances: [-50,50): 5 tuples; [0,100): 10; [50,150): 5.
  auto m = sink.multiset();
  std::multiset<std::pair<Timestamp, int>> expected{
      {49, 5}, {99, 10}, {149, 5}};
  EXPECT_EQ(m, expected);
}

}  // namespace
}  // namespace aggspes
