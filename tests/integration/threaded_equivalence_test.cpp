// Integration: the thread-per-node physical runtime must produce exactly
// the same output multisets as the deterministic single-threaded scheduler
// for every operator family — dedicated, AggBased (with its loop), A+, and
// the custom-state operator. This is the engine-level "physical instances
// enforce logical semantics" guarantee (§ 2.2-2.3).
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "aggbased/aplus.hpp"
#include "aggbased/custom_state.hpp"
#include "aggbased/flatmap.hpp"
#include "aggbased/join.hpp"
#include "core/operators/join.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/runtime/threaded_runtime.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
  friend auto operator<=>(const Ev&, const Ev&) = default;
};

}  // namespace
}  // namespace aggspes

template <>
struct std::hash<aggspes::Ev> {
  size_t operator()(const aggspes::Ev& e) const {
    return aggspes::hash_values(e.key, e.val);
  }
};

namespace aggspes {
namespace {

std::vector<Tuple<Ev>> random_stream(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> key_d(0, 3);
  std::uniform_int_distribution<int> val_d(0, 9);
  std::vector<Tuple<Ev>> v;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, {key_d(rng), val_d(rng)}});
  }
  return v;
}

FlatMapFn<Ev, int> test_fm() {
  return [](const Ev& e) {
    std::vector<int> out;
    for (int i = 0; i <= e.val % 3; ++i) out.push_back(e.key * 100 + i);
    return out;
  };
}

TEST(ThreadedEquivalence, AggBasedFlatMap) {
  auto in = random_stream(11, 300);
  const Timestamp flush = in.back().ts + 30;

  Flow single;
  auto& s_src = single.add<TimedSource<Ev>>(in, 7, flush);
  AggBasedFlatMap<Ev, int> s_op(single, test_fm(), 7);
  auto& s_sink = single.add<CollectorSink<int>>();
  single.connect(s_src.out(), s_op.in());
  single.connect(s_op.out(), s_sink.in());
  single.run();

  ThreadedFlow threaded;
  auto& t_src = threaded.add<TimedSource<Ev>>(in, 7, flush);
  AggBasedFlatMap<Ev, int> t_op(threaded, test_fm(), 7);
  auto& t_sink = threaded.add<CollectorSink<int>>();
  threaded.connect(t_src, t_src.out(), t_op.in_node(), t_op.in());
  threaded.connect(t_op.out_node(), t_op.out(), t_sink, t_sink.in());
  threaded.run();

  EXPECT_EQ(t_sink.multiset(), s_sink.multiset());
  EXPECT_EQ(t_sink.late_tuples(), 0);
  EXPECT_TRUE(t_sink.ended());
}

using Pair = std::pair<Ev, Ev>;

std::multiset<std::tuple<Timestamp, Ev, Ev>> pairs_of(
    const CollectorSink<Pair>& sink) {
  std::multiset<std::tuple<Timestamp, Ev, Ev>> out;
  for (const auto& t : sink.tuples()) {
    out.emplace(t.ts, t.value.first, t.value.second);
  }
  return out;
}

TEST(ThreadedEquivalence, DedicatedAndAggBasedJoin) {
  auto lefts = random_stream(21, 150);
  auto rights = random_stream(22, 150);
  const Timestamp flush =
      std::max(lefts.back().ts, rights.back().ts) + 40;
  const WindowSpec spec{.advance = 10, .size = 20};
  auto key = [](const Ev& e) { return e.key; };
  auto pred = [](const Ev& a, const Ev& b) {
    return (a.val + b.val) % 2 == 0;
  };

  // Single-threaded dedicated = reference.
  Flow single;
  auto& s1 = single.add<TimedSource<Ev>>(lefts, 7, flush);
  auto& s2 = single.add<TimedSource<Ev>>(rights, 7, flush);
  auto& s_join = single.add<JoinOp<Ev, Ev, int>>(spec, key, key, pred);
  auto& s_sink = single.add<CollectorSink<Pair>>();
  single.connect(s1.out(), s_join.in_left());
  single.connect(s2.out(), s_join.in_right());
  single.connect(s_join.out(), s_sink.in());
  single.run();
  auto reference = pairs_of(s_sink);
  ASSERT_FALSE(reference.empty());

  {  // Threaded dedicated.
    ThreadedFlow tf;
    auto& t1 = tf.add<TimedSource<Ev>>(lefts, 7, flush);
    auto& t2 = tf.add<TimedSource<Ev>>(rights, 7, flush);
    auto& op = tf.add<JoinOp<Ev, Ev, int>>(spec, key, key, pred);
    auto& sink = tf.add<CollectorSink<Pair>>();
    tf.connect(t1, t1.out(), op, op.in_left());
    tf.connect(t2, t2.out(), op, op.in_right());
    tf.connect(op, op.out(), sink, sink.in());
    tf.run();
    EXPECT_EQ(pairs_of(sink), reference) << "threaded dedicated";
  }
  {  // Threaded AggBased (three A's + the Unfold loop).
    ThreadedFlow tf;
    auto& t1 = tf.add<TimedSource<Ev>>(lefts, 7, flush);
    auto& t2 = tf.add<TimedSource<Ev>>(rights, 7, flush);
    AggBasedJoin<Ev, Ev, int> op(tf, spec, key, key, pred, 7);
    auto& sink = tf.add<CollectorSink<Pair>>();
    tf.connect(t1, t1.out(), op.left_in_node(), op.left_in());
    tf.connect(t2, t2.out(), op.right_in_node(), op.right_in());
    tf.connect(op.out_node(), op.out(), sink, sink.in());
    tf.run();
    EXPECT_EQ(pairs_of(sink), reference) << "threaded aggbased";
    EXPECT_EQ(sink.late_tuples(), 0);
  }
  {  // Threaded A+.
    ThreadedFlow tf;
    auto& t1 = tf.add<TimedSource<Ev>>(lefts, 7, flush);
    auto& t2 = tf.add<TimedSource<Ev>>(rights, 7, flush);
    AplusJoin<Ev, Ev, int> op(tf, spec, key, key, pred);
    auto& sink = tf.add<CollectorSink<Pair>>();
    tf.connect(t1, t1.out(), op.left_in_node(), op.left_in());
    tf.connect(t2, t2.out(), op.right_in_node(), op.right_in());
    tf.connect(op.out_node(), op.out(), sink, sink.in());
    tf.run();
    EXPECT_EQ(pairs_of(sink), reference) << "threaded a+";
  }
}

TEST(ThreadedEquivalence, CustomStateOperator) {
  auto in = random_stream(31, 200);
  const Timestamp flush = in.back().ts + 40;
  using Op = CustomStateOp<Ev, long, long, int>;
  auto build = [&](auto& flow, auto&& connect_fn) {
    Op op(flow, /*period=*/25, [](const Ev& e) { return e.key; },
          [](const Ev& e) { return static_cast<long>(e.val); },
          [](long s, const Ev& e) { return s + e.val; },
          [](long a, long b) { return a + b; },
          [](const long& s) { return std::vector<long>{s}; });
    connect_fn(op);
  };

  Flow single;
  auto& s_src = single.add<TimedSource<Ev>>(in, 7, flush);
  auto& s_sink = single.add<CollectorSink<long>>();
  build(single, [&](Op& op) {
    single.connect(s_src.out(), op.in());
    single.connect(op.out(), s_sink.in());
  });
  single.run();
  ASSERT_FALSE(s_sink.tuples().empty());

  ThreadedFlow tf;
  auto& t_src = tf.add<TimedSource<Ev>>(in, 7, flush);
  auto& t_sink = tf.add<CollectorSink<long>>();
  build(tf, [&](Op& op) {
    tf.connect(t_src, t_src.out(), op.in_node(), op.in());
    tf.connect(op.out_node(), op.out(), t_sink, t_sink.in());
  });
  tf.run();

  EXPECT_EQ(t_sink.multiset(), s_sink.multiset());
  EXPECT_TRUE(t_sink.ended());
}

// Repeatability under races: run the loop-bearing AggBased FM several
// times on the threaded runtime; every run must match the reference.
class ThreadedRepeat : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedRepeat, AggBasedFlatMapStable) {
  auto in = random_stream(41 + static_cast<unsigned>(GetParam()), 200);
  const Timestamp flush = in.back().ts + 30;

  Flow single;
  auto& s_src = single.add<TimedSource<Ev>>(in, 5, flush);
  AggBasedFlatMap<Ev, int> s_op(single, test_fm(), 5);
  auto& s_sink = single.add<CollectorSink<int>>();
  single.connect(s_src.out(), s_op.in());
  single.connect(s_op.out(), s_sink.in());
  single.run();

  ThreadedFlow tf;
  auto& t_src = tf.add<TimedSource<Ev>>(in, 5, flush);
  AggBasedFlatMap<Ev, int> t_op(tf, test_fm(), 5);
  auto& t_sink = tf.add<CollectorSink<int>>();
  tf.connect(t_src, t_src.out(), t_op.in_node(), t_op.in());
  tf.connect(t_op.out_node(), t_op.out(), t_sink, t_sink.in());
  tf.run();
  EXPECT_EQ(t_sink.multiset(), s_sink.multiset());
}

INSTANTIATE_TEST_SUITE_P(Runs, ThreadedRepeat, ::testing::Range(0, 6));

}  // namespace
}  // namespace aggspes
