// Integration: chains of AggBased operators. § 3 (note on C1) argues that
// if an AggBased operator is fed a stream satisfying C1 with distance D,
// its output satisfies C1 too, so AggBased operators compose — a pipeline
// can be *entirely* Aggregate-based. These tests chain AggBased F → M → FM
// and FM → J and compare against the dedicated chain.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "aggbased/flatmap.hpp"
#include "aggbased/join.hpp"
#include "core/operators/join.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

std::vector<Tuple<int>> random_ints(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 30);
  std::vector<Tuple<int>> v;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

TEST(Chaining, FilterMapFlatMapAllAggBased) {
  auto in = random_ints(5, 200);
  const Timestamp flush = in.back().ts + 40;
  const Timestamp d = 6;

  auto f_c = [](const int& v) { return v % 3 != 0; };
  auto f_m = [](const int& v) { return v * 2 + 1; };
  FlatMapFn<int, int> f_fm = [](const int& v) {
    std::vector<int> out;
    for (int i = 0; i < v % 3; ++i) out.push_back(v + i);
    return out;
  };

  // Dedicated chain.
  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(in, d, flush);
  auto& d_f = ded.add<FilterOp<int>>(f_c);
  auto& d_m = ded.add<MapOp<int, int>>(f_m);
  auto& d_fm = ded.add<FlatMapOp<int, int>>(f_fm);
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_f.in());
  ded.connect(d_f.out(), d_m.in());
  ded.connect(d_m.out(), d_fm.in());
  ded.connect(d_fm.out(), d_sink.in());
  ded.run();

  // Fully AggBased chain: three Embed/Unfold compositions back to back.
  // § 3's C1 note, made constructive: each stage's C3 guard steps its
  // output watermarks by at most its lateness L, so the output satisfies
  // C1 with D = L and a downstream stage with the same lateness composes.
  Flow agg;
  auto& a_src = agg.add<TimedSource<int>>(in, d, flush);
  auto a_f = make_aggbased_filter<int>(agg, f_c, d);
  auto a_m = make_aggbased_map<int, int>(agg, f_m, d);
  AggBasedFlatMap<int, int> a_fm(agg, f_fm, d);
  auto& a_sink = agg.add<CollectorSink<int>>();
  agg.connect(a_src.out(), a_f.in());
  agg.connect(a_f.out(), a_m.in());
  agg.connect(a_m.out(), a_fm.in());
  agg.connect(a_fm.out(), a_sink.in());
  agg.run();

  EXPECT_EQ(a_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(a_sink.late_tuples(), 0);
  EXPECT_EQ(a_sink.watermark_regressions(), 0);
  EXPECT_TRUE(a_sink.ended());
  ASSERT_FALSE(d_sink.tuples().empty());
}

TEST(Chaining, AggBasedFlatMapFeedsAggBasedJoin) {
  auto lefts = random_ints(7, 120);
  auto rights = random_ints(8, 120);
  const Timestamp flush =
      std::max(lefts.back().ts, rights.back().ts) + 60;
  const Timestamp d = 6;
  const WindowSpec spec{.advance = 10, .size = 20};

  FlatMapFn<int, int> pre = [](const int& v) {
    return v % 2 == 0 ? std::vector<int>{v / 2} : std::vector<int>{};
  };
  auto key = [](const int& v) { return v % 4; };
  auto pred = [](const int& a, const int& b) { return a != b; };

  // Dedicated: FM on each input, then dedicated J.
  Flow ded;
  auto& d_s1 = ded.add<TimedSource<int>>(lefts, d, flush);
  auto& d_s2 = ded.add<TimedSource<int>>(rights, d, flush);
  auto& d_fm1 = ded.add<FlatMapOp<int, int>>(pre);
  auto& d_fm2 = ded.add<FlatMapOp<int, int>>(pre);
  auto& d_join = ded.add<JoinOp<int, int, int>>(spec, key, key, pred);
  auto& d_sink = ded.add<CollectorSink<std::pair<int, int>>>();
  ded.connect(d_s1.out(), d_fm1.in());
  ded.connect(d_s2.out(), d_fm2.in());
  ded.connect(d_fm1.out(), d_join.in_left());
  ded.connect(d_fm2.out(), d_join.in_right());
  ded.connect(d_join.out(), d_sink.in());
  ded.run();

  // AggBased: AggBased FM on each input, then AggBased J — the whole
  // pipeline is compositions of the minimal Aggregate.
  Flow agg;
  auto& a_s1 = agg.add<TimedSource<int>>(lefts, d, flush);
  auto& a_s2 = agg.add<TimedSource<int>>(rights, d, flush);
  AggBasedFlatMap<int, int> a_fm1(agg, pre, d);
  AggBasedFlatMap<int, int> a_fm2(agg, pre, d);
  AggBasedJoin<int, int, int> a_join(agg, spec, key, key, pred, d);
  auto& a_sink = agg.add<CollectorSink<std::pair<int, int>>>();
  agg.connect(a_s1.out(), a_fm1.in());
  agg.connect(a_s2.out(), a_fm2.in());
  agg.connect(a_fm1.out(), a_join.left_in());
  agg.connect(a_fm2.out(), a_join.right_in());
  agg.connect(a_join.out(), a_sink.in());
  agg.run();

  auto to_set = [](const CollectorSink<std::pair<int, int>>& s) {
    std::multiset<std::tuple<Timestamp, int, int>> m;
    for (const auto& t : s.tuples()) {
      m.emplace(t.ts, t.value.first, t.value.second);
    }
    return m;
  };
  EXPECT_EQ(to_set(a_sink), to_set(d_sink));
  EXPECT_EQ(a_sink.late_tuples(), 0);
  EXPECT_TRUE(a_sink.ended());
}

// Sweep: chain depth × watermark cadence. Deep AggBased chains must stay
// correct for every D (each stage's lateness = that D).
class ChainDepthSweep
    : public ::testing::TestWithParam<std::tuple<int, Timestamp>> {};

TEST_P(ChainDepthSweep, DeepMapChainsMatchDedicated) {
  auto [depth, d] = GetParam();
  auto in = random_ints(99, 120);
  const Timestamp flush = in.back().ts + 20 * (depth + 1) * d;

  auto f_m = [](const int& v) { return v + 1; };

  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(in, d, flush);
  Outlet<int>* d_prev = &d_src.out();
  for (int i = 0; i < depth; ++i) {
    auto& m = ded.add<MapOp<int, int>>(f_m);
    ded.connect(*d_prev, m.in());
    d_prev = &m.out();
  }
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(*d_prev, d_sink.in());
  ded.run();

  Flow agg;
  auto& a_src = agg.add<TimedSource<int>>(in, d, flush);
  Outlet<int>* a_prev = &a_src.out();
  for (int i = 0; i < depth; ++i) {
    auto m = make_aggbased_map<int, int>(agg, f_m, d);
    agg.connect(*a_prev, m.in());
    a_prev = &m.out();
  }
  auto& a_sink = agg.add<CollectorSink<int>>();
  agg.connect(*a_prev, a_sink.in());
  agg.run();

  EXPECT_EQ(a_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(a_sink.late_tuples(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndCadences, ChainDepthSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Timestamp{3}, Timestamp{9})));

}  // namespace
}  // namespace aggspes
