// Integration: out-of-timestamp-order streams. Watermarks are the paper's
// mechanism (§ 2.3) for reordering: any arrival order is legal as long as
// no tuple is older than a preceding watermark. Every stateful operator —
// and the full AggBased compositions — must produce order-independent
// results.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "aggbased/flatmap.hpp"
#include "core/operators/aggregate.hpp"
#include "core/operators/join.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

/// Builds a script whose tuples are locally shuffled (disorder window of
/// `k` positions) with watermarks that stay correct: each watermark is the
/// minimum timestamp of everything still to come. Returns the script and
/// the largest event-time distance between consecutive watermarks (the
/// effective C1 "D" of the stream).
struct DisorderedStream {
  std::vector<Element<int>> script;
  Timestamp max_wm_gap{0};
};

DisorderedStream disordered(std::vector<Tuple<int>> tuples, int k,
                            int wm_every, Timestamp flush_to, unsigned seed) {
  std::mt19937 rng(seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  // Local shuffle: swap each element with one up to k positions ahead.
  for (std::size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::uniform_int_distribution<std::size_t> d(
        i, std::min(tuples.size() - 1, i + static_cast<std::size_t>(k)));
    std::swap(tuples[i], tuples[d(rng)]);
  }
  // Suffix minima -> maximal valid watermark at each position.
  std::vector<Timestamp> suffix_min(tuples.size() + 1, kMaxTimestamp);
  for (std::size_t i = tuples.size(); i-- > 0;) {
    suffix_min[i] = std::min(suffix_min[i + 1], tuples[i].ts);
  }
  DisorderedStream out;
  Timestamp last_wm = kMinTimestamp;
  Timestamp first_wm = kMinTimestamp;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    out.script.push_back(tuples[i]);
    if ((i + 1) % static_cast<std::size_t>(wm_every) == 0) {
      const Timestamp w = suffix_min[i + 1];
      if (w > last_wm && w != kMaxTimestamp) {
        if (last_wm != kMinTimestamp) {
          out.max_wm_gap = std::max(out.max_wm_gap, w - last_wm);
        } else {
          first_wm = w;
        }
        out.script.push_back(Watermark{w});
        last_wm = w;
      }
    }
  }
  if (last_wm == kMinTimestamp) first_wm = flush_to;
  out.max_wm_gap = std::max(
      {out.max_wm_gap, flush_to - (last_wm == kMinTimestamp ? first_wm
                                                            : last_wm),
       first_wm - tuples.front().ts});
  out.script.push_back(Watermark{flush_to});
  out.script.push_back(EndOfStream{});
  return out;
}

std::vector<Tuple<int>> base_tuples(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 20);
  std::vector<Tuple<int>> v;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

TEST(OutOfOrder, AggregateResultsAreOrderIndependent) {
  auto tuples = base_tuples(3, 150);
  const Timestamp flush = tuples.back().ts + 30;
  auto run = [&](std::vector<Element<int>> script) {
    Flow flow;
    auto& src = flow.add<ScriptSource<int>>(std::move(script));
    auto& agg = flow.add<AggregateOp<int, int, int>>(
        WindowSpec{.advance = 10, .size = 20},
        [](const int& v) { return v % 3; },
        [](const WindowView<int, int>& w) -> std::optional<int> {
          int s = 0;
          for (const auto& t : w.items) s += t.value;
          return s;
        });
    auto& sink = flow.add<CollectorSink<int>>();
    flow.connect(src.out(), agg.in());
    flow.connect(agg.out(), sink.in());
    flow.run();
    EXPECT_EQ(agg.machine().dropped_late(), 0u);
    return sink.multiset();
  };
  auto in_order = run(timed_script(tuples, 10, flush));
  for (unsigned seed : {1u, 2u, 3u}) {
    auto dis = disordered(tuples, /*k=*/6, /*wm_every=*/10, flush, seed);
    EXPECT_EQ(run(std::move(dis.script)), in_order) << "seed " << seed;
  }
}

TEST(OutOfOrder, JoinResultsAreOrderIndependent) {
  auto lefts = base_tuples(11, 80);
  auto rights = base_tuples(12, 80);
  const Timestamp flush =
      std::max(lefts.back().ts, rights.back().ts) + 40;
  auto run = [&](std::vector<Element<int>> ls, std::vector<Element<int>> rs) {
    Flow flow;
    auto& s1 = flow.add<ScriptSource<int>>(std::move(ls));
    auto& s2 = flow.add<ScriptSource<int>>(std::move(rs));
    auto& join = flow.add<JoinOp<int, int, int>>(
        WindowSpec{.advance = 10, .size = 20},
        [](const int& v) { return v % 3; }, [](const int& v) { return v % 3; },
        [](const int& a, const int& b) { return a < b; });
    auto& sink = flow.add<CollectorSink<std::pair<int, int>>>();
    flow.connect(s1.out(), join.in_left());
    flow.connect(s2.out(), join.in_right());
    flow.connect(join.out(), sink.in());
    flow.run();
    EXPECT_EQ(join.dropped_late(), 0u);
    std::multiset<std::tuple<Timestamp, int, int>> m;
    for (const auto& t : sink.tuples()) {
      m.emplace(t.ts, t.value.first, t.value.second);
    }
    return m;
  };
  auto reference =
      run(timed_script(lefts, 10, flush), timed_script(rights, 10, flush));
  ASSERT_FALSE(reference.empty());
  for (unsigned seed : {4u, 5u}) {
    auto dl = disordered(lefts, 5, 8, flush, seed);
    auto dr = disordered(rights, 5, 8, flush, seed + 100);
    EXPECT_EQ(run(std::move(dl.script), std::move(dr.script)), reference)
        << "seed " << seed;
  }
}

TEST(OutOfOrder, AggBasedFlatMapHandlesDisorderedInput) {
  // Theorem 1 under disorder: lateness must cover the stream's actual
  // watermark cadence (L >= D); the composition then still matches the
  // dedicated FM.
  auto tuples = base_tuples(21, 120);
  const Timestamp flush = tuples.back().ts + 30;
  FlatMapFn<int, int> fm = [](const int& v) {
    std::vector<int> out;
    for (int i = 0; i < v % 3; ++i) out.push_back(v * 10 + i);
    return out;
  };

  auto dis = disordered(tuples, 4, 12, flush, 9);
  const Timestamp lateness = std::max<Timestamp>(dis.max_wm_gap, 1);

  Flow ded;
  auto& d_src = ded.add<ScriptSource<int>>(dis.script);
  auto& d_fm = ded.add<FlatMapOp<int, int>>(fm);
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_fm.in());
  ded.connect(d_fm.out(), d_sink.in());
  ded.run();

  Flow agg;
  auto& a_src = agg.add<ScriptSource<int>>(dis.script);
  AggBasedFlatMap<int, int> a_fm(agg, fm, lateness);
  auto& a_sink = agg.add<CollectorSink<int>>();
  agg.connect(a_src.out(), a_fm.in());
  agg.connect(a_fm.out(), a_sink.in());
  agg.run();

  EXPECT_EQ(a_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(a_sink.late_tuples(), 0);
  EXPECT_TRUE(a_sink.ended());
}

}  // namespace
}  // namespace aggspes
