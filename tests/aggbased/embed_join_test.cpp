// Unit tests for Listing 2 — the three Aggregates enforcing E_J (Claim 2 /
// Theorem 2), examined at the envelope level (before any Unfold).
#include "aggbased/embed_join.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hashing.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
};

}  // namespace
}  // namespace aggspes

template <>
struct std::hash<aggspes::Ev> {
  size_t operator()(const aggspes::Ev& e) const {
    return aggspes::hash_values(e.key, e.val);
  }
};

namespace aggspes {
namespace {

using Sides = JoinSides<Ev, Ev>;
using Out = Embedded<std::pair<Ev, Ev>>;

std::function<int(const Ev&)> by_key() {
  return [](const Ev& e) { return e.key; };
}

struct Built {
  Flow flow;
  EmbedJoin<Ev, Ev, int>* ej;
  CollectorSink<Out>* sink;

  Built(std::vector<Tuple<Ev>> lefts, std::vector<Tuple<Ev>> rights,
        WindowSpec spec, std::function<bool(const Ev&, const Ev&)> pred) {
    auto& s1 = flow.add<TimedSource<Ev>>(std::move(lefts), 5, 50);
    auto& s2 = flow.add<TimedSource<Ev>>(std::move(rights), 5, 50);
    ej = new EmbedJoin<Ev, Ev, int>(flow, spec, by_key(), by_key(),
                                    std::move(pred));
    sink = &flow.add<CollectorSink<Out>>();
    flow.connect(s1.out(), ej->left_in());
    flow.connect(s2.out(), ej->right_in());
    flow.connect(ej->out(), sink->in());
    flow.run();
  }
  ~Built() { delete ej; }
};

TEST(EmbedJoin, EnvelopeCarriesAllMatchingPairs) {
  Built b({{1, 0, {7, 1}}, {2, 0, {7, 2}}}, {{3, 0, {7, 10}}},
          WindowSpec{.advance = 10, .size = 10},
          [](const Ev&, const Ev&) { return true; });
  ASSERT_EQ(b.sink->tuples().size(), 1u);
  const auto& env = b.sink->tuples()[0];
  // Claim 2: t_E.τ = γ.l + WS − δ and t_E[2] = −1.
  EXPECT_EQ(env.ts, 9);
  EXPECT_TRUE(env.value.from_embed());
  ASSERT_EQ(env.value.items().size(), 2u);
}

TEST(EmbedJoin, CartesianOrderFollowsListing2) {
  // Listing 2's f_O matches each arriving group against *previously*
  // traversed tuples of the other side; with lefts L1, L2 then right R,
  // the pairs appear as (L1,R), (L2,R).
  Built b({{1, 0, {1, 1}}, {2, 0, {1, 2}}}, {{3, 0, {1, 9}}},
          WindowSpec{.advance = 10, .size = 10},
          [](const Ev&, const Ev&) { return true; });
  ASSERT_EQ(b.sink->tuples().size(), 1u);
  const auto& items = b.sink->tuples()[0].value.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first.val, 1);
  EXPECT_EQ(items[1].first.val, 2);
}

TEST(EmbedJoin, NoMatchesMeansNoEnvelope) {
  // List. 2 L33-36: if T = {}, f_O returns ∅ — no output tuple at all.
  Built b({{1, 0, {1, 1}}}, {{2, 0, {2, 1}}},
          WindowSpec{.advance = 10, .size = 10},
          [](const Ev&, const Ev&) { return true; });
  EXPECT_TRUE(b.sink->tuples().empty());
  EXPECT_TRUE(b.sink->ended());
}

TEST(EmbedJoin, SideKeyRoutesByOriginStream) {
  // f'_K must apply f_K¹ to left-side envelopes and f_K² to right-side
  // ones. Use different key functions per side so a mix-up would mismatch.
  Flow flow;
  auto& s1 = flow.add<TimedSource<Ev>>(
      std::vector<Tuple<Ev>>{{1, 0, {3, 1}}}, 5, 40);
  auto& s2 = flow.add<TimedSource<Ev>>(
      std::vector<Tuple<Ev>>{{2, 0, {6, 2}}}, 5, 40);
  // Left keys by key, right keys by key/2: 3 == 6/2 -> aligned.
  EmbedJoin<Ev, Ev, int> ej(
      flow, WindowSpec{.advance = 10, .size = 10},
      [](const Ev& e) { return e.key; }, [](const Ev& e) { return e.key / 2; },
      [](const Ev&, const Ev&) { return true; });
  auto& sink = flow.add<CollectorSink<Out>>();
  flow.connect(s1.out(), ej.left_in());
  flow.connect(s2.out(), ej.right_in());
  flow.connect(ej.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value.items().size(), 1u);
}

TEST(EmbedJoin, DuplicateTuplesWrappedWithMultiplicity) {
  // A1/A2 key by all attributes, so identical tuples share one δ-window
  // instance and the wrapper embeds them all in one group.
  Built b({{1, 0, {1, 5}}, {1, 0, {1, 5}}}, {{2, 0, {1, 6}}},
          WindowSpec{.advance = 10, .size = 10},
          [](const Ev&, const Ev&) { return true; });
  ASSERT_EQ(b.sink->tuples().size(), 1u);
  // Two identical lefts × one right = 2 pairs.
  EXPECT_EQ(b.sink->tuples()[0].value.items().size(), 2u);
}

TEST(EmbedJoin, WatermarksPropagateThroughAllThreeAggregates) {
  Built b({{1, 0, {1, 1}}}, {{2, 0, {1, 2}}},
          WindowSpec{.advance = 10, .size = 10},
          [](const Ev&, const Ev&) { return true; });
  EXPECT_FALSE(b.sink->watermarks().empty());
  EXPECT_EQ(b.sink->watermark_regressions(), 0);
  EXPECT_EQ(b.sink->late_tuples(), 0);
  EXPECT_TRUE(b.sink->ended());
}

}  // namespace
}  // namespace aggspes
