// Tests for the § 5.2 pattern library: reusable event-time-unbounded
// stateful operators, all expressed through the Listing 6 construction.
#include "aggbased/patterns.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
};

std::function<int(const Ev&)> by_key() {
  return [](const Ev& e) { return e.key; };
}
std::function<int(const Ev&)> by_val() {
  return [](const Ev& e) { return e.val; };
}

TEST(RunningCount, CountsPerKeyForever) {
  Flow flow;
  std::vector<Tuple<Ev>> in{{1, 0, {0, 1}}, {2, 0, {1, 1}}, {3, 0, {0, 1}},
                            {12, 0, {0, 1}}};
  auto& src = flow.add<TimedSource<Ev>>(in, 5, 32);
  auto op = patterns::make_running_count<Ev, int>(flow, 10, by_key());
  auto& sink = flow.add<CollectorSink<std::pair<int, std::uint64_t>>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();

  // τ=10: key0 -> 2, key1 -> 1; τ=20: key0 -> 3, key1 -> 1; τ=30: same.
  std::multiset<std::pair<Timestamp, std::pair<int, std::uint64_t>>> got;
  for (const auto& t : sink.tuples()) got.emplace(t.ts, t.value);
  std::multiset<std::pair<Timestamp, std::pair<int, std::uint64_t>>>
      expected{
          {10, {0, 2}}, {10, {1, 1}}, {20, {0, 3}},
          {20, {1, 1}}, {30, {0, 3}}, {30, {1, 1}},
      };
  EXPECT_EQ(got, expected);
}

TEST(RunningTopK, KeepsLargestAcrossPeriods) {
  Flow flow;
  std::vector<Tuple<Ev>> in{{1, 0, {0, 5}},  {2, 0, {0, 9}}, {3, 0, {0, 2}},
                            {11, 0, {0, 7}}, {12, 0, {0, 1}}};
  auto& src = flow.add<TimedSource<Ev>>(in, 5, 32);
  auto op =
      patterns::make_running_topk<Ev, int, int>(flow, 10, 2, by_key(),
                                                by_val());
  auto& sink = flow.add<CollectorSink<std::vector<int>>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();

  ASSERT_GE(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].ts, 10);
  EXPECT_EQ(sink.tuples()[0].value, (std::vector<int>{9, 5}));
  EXPECT_EQ(sink.tuples()[1].ts, 20);
  EXPECT_EQ(sink.tuples()[1].value, (std::vector<int>{9, 7}));
}

TEST(TopKState, InsertKeepsDescendingBounded) {
  patterns::TopK<int> s{3, {}};
  for (int v : {4, 9, 1, 7, 3, 8}) s.insert(v);
  EXPECT_EQ(s.values, (std::vector<int>{9, 8, 7}));
}

TEST(DistinctCount, CountsUniquesForever) {
  Flow flow;
  std::vector<Tuple<Ev>> in{{1, 0, {0, 5}},  {2, 0, {0, 5}}, {3, 0, {0, 7}},
                            {11, 0, {0, 5}}, {12, 0, {0, 8}}};
  auto& src = flow.add<TimedSource<Ev>>(in, 5, 32);
  auto op = patterns::make_distinct_count<Ev, int, int>(flow, 10, by_key(),
                                                        by_val());
  auto& sink = flow.add<CollectorSink<std::size_t>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();

  ASSERT_GE(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].value, 2u);  // {5, 7}
  EXPECT_EQ(sink.tuples()[1].value, 3u);  // {5, 7, 8}
}

TEST(Deduplicate, EachValueForwardedExactlyOnce) {
  Flow flow;
  std::vector<Tuple<Ev>> in{{1, 0, {0, 5}},  {2, 0, {0, 5}},
                            {3, 0, {0, 7}},  {11, 0, {0, 5}},
                            {12, 0, {0, 8}}, {21, 0, {0, 7}}};
  auto& src = flow.add<TimedSource<Ev>>(in, 5, 42);
  auto op = patterns::make_deduplicate<Ev, int, int>(flow, 10, by_key(),
                                                     by_val());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();

  // Period [0,10): first occurrences 5, 7 -> reported at τ=10.
  // Period [10,20): new value 8 -> reported at τ=20.
  // Period [20,30): 7 already seen -> nothing new (no report content).
  std::multiset<std::pair<Timestamp, int>> got = sink.multiset();
  std::multiset<std::pair<Timestamp, int>> expected{
      {10, 5}, {10, 7}, {20, 8}};
  EXPECT_EQ(got, expected);
}

TEST(Deduplicate, PerKeyIndependence) {
  Flow flow;
  std::vector<Tuple<Ev>> in{{1, 0, {0, 5}}, {2, 0, {1, 5}}};
  auto& src = flow.add<TimedSource<Ev>>(in, 5, 22);
  auto op = patterns::make_deduplicate<Ev, int, int>(flow, 10, by_key(),
                                                     by_val());
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();
  // Value 5 appears once per key: forwarded twice (distinct key states).
  EXPECT_EQ(sink.tuples().size(), 2u);
}

}  // namespace
}  // namespace aggspes
