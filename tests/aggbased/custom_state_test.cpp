// Lemma 5 / Listing 6: the generic stateful operator O — built from FM +
// a sliding-window Aggregate with a state-carrying loop — enforces
// "process every tuple exactly once against an event-time-unbounded,
// per-key state, reporting with period P".
#include "aggbased/custom_state.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
};

struct Counting {  // state: count and sum of everything seen so far
  long count{0};
  long sum{0};
  friend bool operator==(const Counting&, const Counting&) = default;
};

using Op = CustomStateOp<Ev, Counting, std::pair<long, long>, int>;
using Outputs = std::multiset<std::tuple<Timestamp, long, long>>;

Op::KeyFn key_fn() {
  return [](const Ev& e) { return e.key; };
}
Op::CreateFn create_fn() {
  return [](const Ev& e) { return Counting{1, e.val}; };
}
Op::AddFn add_fn() {
  return [](Counting s, const Ev& e) {
    return Counting{s.count + 1, s.sum + e.val};
  };
}
Op::MergeFn merge_fn() {
  return [](Counting a, Counting b) {
    return Counting{a.count + b.count, a.sum + b.sum};
  };
}
Op::OutputFn output_fn() {
  return [](const Counting& s) {
    return std::vector<std::pair<long, long>>{{s.count, s.sum}};
  };
}

Outputs run_o(const std::vector<Tuple<Ev>>& in, Timestamp period,
              Timestamp watermark_period, Timestamp flush_to) {
  Flow flow;
  auto& src = flow.add<TimedSource<Ev>>(in, watermark_period, flush_to);
  Op op(flow, period, key_fn(), create_fn(), add_fn(), merge_fn(),
        output_fn());
  auto& sink = flow.add<CollectorSink<std::pair<long, long>>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  Outputs out;
  for (const auto& t : sink.tuples()) {
    out.emplace(t.ts, t.value.first, t.value.second);
  }
  return out;
}

/// Reference semantics of O: per key, a running fold over all tuples with
/// τ < boundary, reported at every period boundary (l+1)P where the key's
/// state exists (first tuple of the key seen in some earlier full period
/// *or* the state carried forward keeps reporting each period).
Outputs reference(const std::vector<Tuple<Ev>>& in, Timestamp period,
                  Timestamp horizon) {
  Outputs out;
  std::set<int> keys;
  for (const auto& t : in) keys.insert(t.value.key);
  for (int k : keys) {
    Timestamp first_ts = kMaxTimestamp;
    for (const auto& t : in) {
      if (t.value.key == k) first_ts = std::min(first_ts, t.ts);
    }
    // The key's state is created in the instance containing its first
    // tuple; from the next boundary on, it reports every period.
    const Timestamp first_boundary =
        (floor_div(first_ts, period) + 1) * period;
    for (Timestamp b = first_boundary; b <= horizon; b += period) {
      long count = 0, sum = 0;
      for (const auto& t : in) {
        if (t.value.key == k && t.ts < b) {
          ++count;
          sum += t.value.val;
        }
      }
      out.emplace(b, count, sum);
    }
  }
  return out;
}

TEST(CustomState, SingleKeyRunningSum) {
  std::vector<Tuple<Ev>> in{{1, 0, {0, 10}}, {3, 0, {0, 20}},
                            {12, 0, {0, 5}}};
  // P = 10, watermarks every 5; flush far enough that boundaries 10, 20,
  // and 30 all fire.
  auto got = run_o(in, 10, 5, 42);
  // Expected: at τ=10: (2, 30); at τ=20: (3, 35); at τ=30: (3, 35); at
  // τ=40: (3, 35).
  Outputs expected{{10, 2, 30}, {20, 3, 35}, {30, 3, 35}, {40, 3, 35}};
  EXPECT_EQ(got, expected);
}

TEST(CustomState, StatePersistsThroughEmptyPeriods) {
  std::vector<Tuple<Ev>> in{{1, 0, {0, 7}}};
  auto got = run_o(in, 10, 5, 52);
  // One input; state reports every period up to the flush horizon.
  Outputs expected{{10, 1, 7}, {20, 1, 7}, {30, 1, 7}, {40, 1, 7},
                   {50, 1, 7}};
  EXPECT_EQ(got, expected);
}

TEST(CustomState, PerKeyIsolation) {
  std::vector<Tuple<Ev>> in{{1, 0, {0, 1}}, {2, 0, {1, 100}},
                            {11, 0, {0, 2}}};
  auto got = run_o(in, 10, 5, 32);
  Outputs expected{
      {10, 1, 1}, {20, 2, 3}, {30, 2, 3},        // key 0
      {10, 1, 100}, {20, 1, 100}, {30, 1, 100},  // key 1
  };
  EXPECT_EQ(got, expected);
}

TEST(CustomState, BoundaryTupleCountsInLaterPeriod) {
  // A tuple with τ exactly at a period boundary is processed in the later
  // instance (the overlap-deferral rule of Listing 6).
  std::vector<Tuple<Ev>> in{{10, 0, {0, 4}}};
  auto got = run_o(in, 10, 5, 32);
  Outputs expected{{20, 1, 4}, {30, 1, 4}};
  EXPECT_EQ(got, expected);
}

TEST(CustomState, MatchesReferenceFold) {
  std::vector<Tuple<Ev>> in;
  std::mt19937 rng(7);
  std::uniform_int_distribution<Timestamp> gap(0, 4);
  std::uniform_int_distribution<int> key_d(0, 2);
  std::uniform_int_distribution<int> val_d(1, 9);
  Timestamp ts = 0;
  for (int i = 0; i < 40; ++i) {
    ts += gap(rng);
    in.push_back({ts, 0, {key_d(rng), val_d(rng)}});
  }
  const Timestamp period = 10;
  const Timestamp flush = ts + 22;
  auto got = run_o(in, period, /*watermark_period=*/5, flush);
  // Highest boundary b that fires: instance [b-P, b+δ) needs watermark
  // b + δ <= flush, i.e. b <= flush − δ.
  const Timestamp horizon = floor_div(flush - kDelta, period) * period;
  EXPECT_EQ(got, reference(in, period, horizon));
}

// Sweep: random streams × periods × watermark spacings against the fold.
class CustomStateSweep
    : public ::testing::TestWithParam<std::tuple<int, Timestamp, Timestamp>> {
};

TEST_P(CustomStateSweep, MatchesReferenceFold) {
  auto [seed, period, wm_period] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_int_distribution<Timestamp> gap(0, 5);
  std::uniform_int_distribution<int> key_d(0, 3);
  std::uniform_int_distribution<int> val_d(1, 9);
  std::vector<Tuple<Ev>> in;
  Timestamp ts = 0;
  for (int i = 0; i < 50; ++i) {
    ts += gap(rng);
    in.push_back({ts, 0, {key_d(rng), val_d(rng)}});
  }
  const Timestamp flush = ts + 2 * period + 2 * wm_period + 3;
  auto got = run_o(in, period, wm_period, flush);
  const Timestamp horizon = floor_div(flush - kDelta, period) * period;
  EXPECT_EQ(got, reference(in, period, horizon));
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, CustomStateSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(Timestamp{5}, Timestamp{10},
                                         Timestamp{16}),
                       ::testing::Values(Timestamp{3}, Timestamp{8})));

}  // namespace
}  // namespace aggspes
