// Tests for A++ — the eager Aggregate (§ 6.2's proposed relaxation) and
// the eager FM/J built from it. Semantics must still match the Dedicated
// operators exactly; the *timing* (results before watermarks) is what the
// relaxation buys.
#include "aggbased/eager.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "core/operators/join.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
  friend auto operator<=>(const Ev&, const Ev&) = default;
};

}  // namespace
}  // namespace aggspes

template <>
struct std::hash<aggspes::Ev> {
  size_t operator()(const aggspes::Ev& e) const {
    return aggspes::hash_values(e.key, e.val);
  }
};

namespace aggspes {
namespace {

TEST(EagerAggregate, IntermediateResultsPrecedeWatermark) {
  // Feed tuples with NO closing watermark yet: eager outputs must already
  // be visible (the defining property of A++), final outputs not.
  Flow flow;
  auto& src = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
      Tuple<int>{1, 0, 10}, Tuple<int>{2, 0, 20}});
  auto& agg = flow.add<AggregateEagerOp<int, int, int>>(
      WindowSpec{.advance = 10, .size = 10},
      [](const int&) { return 0; },
      /*f_i=*/
      [](const WindowView<int, int>& w) {
        return std::vector<int>{w.items.back().value};  // echo eagerly
      },
      /*f_o=*/
      [](const WindowView<int, int>& w) {
        int sum = 0;
        for (const auto& t : w.items) sum += t.value;
        return std::vector<int>{sum};
      });
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), agg.in());
  flow.connect(agg.out(), sink.in());
  flow.run();
  // Two eager echoes, no watermark yet -> no final sum.
  ASSERT_EQ(sink.tuples().size(), 2u);
  EXPECT_EQ(sink.tuples()[0].value, 10);
  EXPECT_EQ(sink.tuples()[1].value, 20);
  // Eager outputs carry the instance's output timestamp (watermark-safe).
  EXPECT_EQ(sink.tuples()[0].ts, 9);
  EXPECT_EQ(sink.late_tuples(), 0);

  // Now close the window: the final result arrives.
  src.out().push_watermark(10);
  flow.drain();
  ASSERT_EQ(sink.tuples().size(), 3u);
  EXPECT_EQ(sink.tuples()[2].value, 30);
}

TEST(EagerFlatMap, MatchesDedicatedAndNeedsNoWatermarkToEmit) {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 50; ++ts) in.push_back({ts, 0, int(ts % 9)});
  FlatMapFn<int, int> fm = [](const int& v) {
    std::vector<int> out;
    for (int i = 0; i < v % 3; ++i) out.push_back(v * 10 + i);
    return out;
  };

  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(in, 10, 70);
  auto& d_op = ded.add<FlatMapOp<int, int>>(fm);
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_op.in());
  ded.connect(d_op.out(), d_sink.in());
  ded.run();

  Flow eag;
  auto& e_src = eag.add<TimedSource<int>>(in, 10, 70);
  auto& e_op = make_eager_flatmap<int, int>(eag, fm);
  auto& e_sink = eag.add<CollectorSink<int>>();
  eag.connect(e_src.out(), e_op.in());
  eag.connect(e_op.out(), e_sink.in());
  eag.run();

  EXPECT_EQ(e_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(e_sink.late_tuples(), 0);

  // No-watermark variant: eager FM emits everything even without a single
  // watermark (dedicated-like behavior A/A+ cannot provide).
  Flow nowm;
  std::vector<Element<int>> script;
  for (const auto& t : in) script.push_back(t);
  script.push_back(EndOfStream{});
  auto& n_src = nowm.add<ScriptSource<int>>(script);
  auto& n_op = make_eager_flatmap<int, int>(nowm, fm);
  auto& n_sink = nowm.add<CollectorSink<int>>();
  nowm.connect(n_src.out(), n_op.in());
  nowm.connect(n_op.out(), n_sink.in());
  nowm.run();
  EXPECT_EQ(n_sink.multiset(), d_sink.multiset());
}

using Pair = std::pair<Ev, Ev>;

std::multiset<std::tuple<Timestamp, Ev, Ev>> pairs_of(
    const CollectorSink<Pair>& sink) {
  std::multiset<std::tuple<Timestamp, Ev, Ev>> out;
  for (const auto& t : sink.tuples()) {
    out.emplace(t.ts, t.value.first, t.value.second);
  }
  return out;
}

class EagerJoinSweep : public ::testing::TestWithParam<int> {};

TEST_P(EagerJoinSweep, MatchesDedicatedJoin) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<Timestamp> ts_d(0, 50);
  std::uniform_int_distribution<int> key_d(0, 3);
  std::uniform_int_distribution<int> val_d(0, 9);
  auto gen = [&](int n) {
    std::vector<Tuple<Ev>> v;
    for (int i = 0; i < n; ++i) {
      v.push_back({ts_d(rng), 0, {key_d(rng), val_d(rng)}});
    }
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.ts < b.ts; });
    return v;
  };
  auto lefts = gen(30);
  auto rights = gen(30);
  const WindowSpec spec{.advance = 5, .size = 15};
  auto key = [](const Ev& e) { return e.key; };
  auto pred = [](const Ev& a, const Ev& b) { return (a.val + b.val) % 2; };

  Flow ded;
  auto& d1 = ded.add<TimedSource<Ev>>(lefts, 7, 90);
  auto& d2 = ded.add<TimedSource<Ev>>(rights, 7, 90);
  auto& d_op = ded.add<JoinOp<Ev, Ev, int>>(spec, key, key, pred);
  auto& d_sink = ded.add<CollectorSink<Pair>>();
  ded.connect(d1.out(), d_op.in_left());
  ded.connect(d2.out(), d_op.in_right());
  ded.connect(d_op.out(), d_sink.in());
  ded.run();

  Flow eag;
  auto& e1 = eag.add<TimedSource<Ev>>(lefts, 7, 90);
  auto& e2 = eag.add<TimedSource<Ev>>(rights, 7, 90);
  EagerJoin<Ev, Ev, int> e_op(eag, spec, key, key, pred);
  auto& e_sink = eag.add<CollectorSink<Pair>>();
  eag.connect(e1.out(), e_op.left_in());
  eag.connect(e2.out(), e_op.right_in());
  eag.connect(e_op.out(), e_sink.in());
  eag.run();

  EXPECT_EQ(pairs_of(e_sink), pairs_of(d_sink));
  EXPECT_EQ(e_sink.late_tuples(), 0);
  EXPECT_TRUE(e_sink.ended());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerJoinSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace aggspes
