// Tests for Listing 3 — the Unfold operator X built from two Aggregates,
// a loop, and the C2/C3 guards (Theorem 3, Lemma 2).
#include "aggbased/unfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

using Env = Embedded<int>;

Tuple<Env> envelope(Timestamp ts, std::vector<int> items) {
  return {ts, 0, Env{std::move(items), kFromEmbed}};
}

struct XRun {
  std::multiset<std::pair<Timestamp, int>> outputs;
  int late = 0;
  int regressions = 0;
  bool ended = false;
};

XRun run_x(std::vector<Tuple<Env>> envelopes, Timestamp period,
           Timestamp flush_to, Timestamp lateness) {
  Flow flow;
  auto& src = flow.add<TimedSource<Env>>(std::move(envelopes), period,
                                         flush_to);
  UnfoldX<int> x(flow, lateness);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), x.in());
  flow.connect(x.out(), sink.in());
  flow.run();
  return {sink.multiset(), sink.late_tuples(), sink.watermark_regressions(),
          sink.ended()};
}

TEST(UnfoldX, EmitsEveryEmbeddedItemOnceWithEnvelopeTimestamp) {
  auto r = run_x({envelope(5, {10, 20, 30})}, /*period=*/3, /*flush_to=*/20,
                 /*lateness=*/3);
  std::multiset<std::pair<Timestamp, int>> expected{{5, 10}, {5, 20}, {5, 30}};
  EXPECT_EQ(r.outputs, expected);
  EXPECT_TRUE(r.ended);
}

TEST(UnfoldX, SingleItemEnvelope) {
  auto r = run_x({envelope(2, {99})}, 3, 10, 3);
  EXPECT_EQ(r.outputs,
            (std::multiset<std::pair<Timestamp, int>>{{2, 99}}));
}

TEST(UnfoldX, ManyEnvelopesInterleave) {
  auto r = run_x({envelope(1, {1, 2}), envelope(4, {3}), envelope(9, {4, 5})},
                 3, 20, 3);
  std::multiset<std::pair<Timestamp, int>> expected{
      {1, 1}, {1, 2}, {4, 3}, {9, 4}, {9, 5}};
  EXPECT_EQ(r.outputs, expected);
}

TEST(UnfoldX, DuplicateEnvelopesUnfoldWithCombinedMultiplicity) {
  // Lemma 2 context: identical envelopes merge in A1's instance and their
  // items concatenate, so every copy's items still come out.
  auto r = run_x({envelope(5, {7, 8}), envelope(5, {7, 8})}, 3, 20, 3);
  std::multiset<std::pair<Timestamp, int>> expected{
      {5, 7}, {5, 8}, {5, 7}, {5, 8}};
  EXPECT_EQ(r.outputs, expected);
}

TEST(UnfoldX, NoLateArrivalsDownstream) {
  // C3 / Lemma 4: A2's output stream (the sink's input) must contain no
  // tuple older than a preceding watermark.
  std::vector<Tuple<Env>> envs;
  for (Timestamp ts = 0; ts < 40; ts += 2) {
    envs.push_back(envelope(ts, {int(ts), int(ts) + 1, int(ts) + 2}));
  }
  auto r = run_x(envs, /*period=*/4, /*flush_to=*/60, /*lateness=*/4);
  EXPECT_EQ(r.late, 0);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.outputs.size(), 20u * 3u);
}

TEST(UnfoldX, LargeEnvelopeTerminates) {
  std::vector<int> big(200);
  for (int i = 0; i < 200; ++i) big[static_cast<std::size_t>(i)] = i;
  auto r = run_x({Tuple<Env>{3, 0, Env{big, kFromEmbed}}}, 3, 20, 3);
  EXPECT_EQ(r.outputs.size(), 200u);
  EXPECT_TRUE(r.ended);
}

// Property sweep over watermark spacing D and random envelope batches:
// Theorem 3 requires L >= D; with that, X must unfold everything exactly
// once, never produce downstream late arrivals, and always terminate.
class UnfoldSweep
    : public ::testing::TestWithParam<std::tuple<int, Timestamp>> {};

TEST_P(UnfoldSweep, ExactlyOnceForAnyDAndSeed) {
  auto [seed, period] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_int_distribution<Timestamp> gap(0, 4);
  std::uniform_int_distribution<int> size_d(1, 6);
  std::uniform_int_distribution<int> val_d(0, 99);

  std::vector<Tuple<Env>> envs;
  std::multiset<std::pair<Timestamp, int>> expected;
  Timestamp ts = 0;
  for (int i = 0; i < 30; ++i) {
    ts += gap(rng);
    std::vector<int> items;
    const int n = size_d(rng);
    for (int j = 0; j < n; ++j) items.push_back(val_d(rng));
    for (int v : items) expected.emplace(ts, v);
    envs.push_back(envelope(ts, std::move(items)));
  }
  auto r = run_x(envs, period, ts + 3 * period + 5, /*lateness=*/period);
  EXPECT_EQ(r.outputs, expected);
  EXPECT_EQ(r.late, 0);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_TRUE(r.ended);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSpacings, UnfoldSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(Timestamp{1}, Timestamp{2},
                                         Timestamp{5}, Timestamp{11})));

}  // namespace
}  // namespace aggspes
