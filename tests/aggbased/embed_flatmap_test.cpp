// Tests for Listing 1 — the Aggregate enforcing E_FM (Theorem 1 / Claim 1).
#include "aggbased/embed_flatmap.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

using Env = Embedded<int>;

FlatMapFn<int, int> twice_plus() {
  // f_FM(v) = {v+1, v+2}: selectivity 2.
  return [](const int& v) { return std::vector<int>{v + 1, v + 2}; };
}

TEST(EmbedFlatMap, EnvelopeCarriesAllOutputsWithInputTimestamp) {
  Flow flow;
  std::vector<Tuple<int>> in{{3, 0, 10}, {7, 0, 20}};
  auto& src = flow.add<TimedSource<int>>(in, 4, 20);
  auto& e = make_embed_flatmap<int, int>(flow, twice_plus());
  auto& sink = flow.add<CollectorSink<Env>>();
  flow.connect(src.out(), e.in());
  flow.connect(e.out(), sink.in());
  flow.run();

  ASSERT_EQ(sink.tuples().size(), 2u);
  // Claim 1: t_E.τ = t.τ and t_E[1] carries f_FM(t); t_E[2] = −1.
  EXPECT_EQ(sink.tuples()[0].ts, 3);
  EXPECT_EQ(sink.tuples()[0].value.items(), (std::vector<int>{11, 12}));
  EXPECT_TRUE(sink.tuples()[0].value.from_embed());
  EXPECT_EQ(sink.tuples()[1].ts, 7);
  EXPECT_EQ(sink.tuples()[1].value.items(), (std::vector<int>{21, 22}));
}

TEST(EmbedFlatMap, EmptyFunctionResultProducesNoEnvelope) {
  Flow flow;
  std::vector<Tuple<int>> in{{1, 0, 5}};
  auto& src = flow.add<TimedSource<int>>(in, 4, 10);
  auto& e = make_embed_flatmap<int, int>(
      flow, [](const int&) { return std::vector<int>{}; });
  auto& sink = flow.add<CollectorSink<Env>>();
  flow.connect(src.out(), e.in());
  flow.connect(e.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.tuples().empty());
  EXPECT_TRUE(sink.ended());
}

TEST(EmbedFlatMap, DuplicateInputsAccumulateWithMultiplicity) {
  // Theorem 1's key subtlety: identical tuples share a window instance
  // (key-by all attributes), and f_O appends f_FM once per tuple, so k
  // duplicates embed k copies of each output in ONE envelope.
  Flow flow;
  std::vector<Tuple<int>> in{{5, 0, 1}, {5, 0, 1}, {5, 0, 1}};
  auto& src = flow.add<TimedSource<int>>(in, 4, 10);
  auto& e = make_embed_flatmap<int, int>(
      flow, [](const int& v) { return std::vector<int>{v * 10}; });
  auto& sink = flow.add<CollectorSink<Env>>();
  flow.connect(src.out(), e.in());
  flow.connect(e.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value.items(), (std::vector<int>{10, 10, 10}));
}

TEST(EmbedFlatMap, DistinctPayloadsAtSameTimestampStaySeparate) {
  Flow flow;
  std::vector<Tuple<int>> in{{5, 0, 1}, {5, 0, 2}};
  auto& src = flow.add<TimedSource<int>>(in, 4, 10);
  auto& e = make_embed_flatmap<int, int>(
      flow, [](const int& v) { return std::vector<int>{v}; });
  auto& sink = flow.add<CollectorSink<Env>>();
  flow.connect(src.out(), e.in());
  flow.connect(e.out(), sink.in());
  flow.run();
  // Key-by all attributes: two instances, two envelopes.
  ASSERT_EQ(sink.tuples().size(), 2u);
}

TEST(EmbedFlatMap, TypeChangingFunction) {
  Flow flow;
  std::vector<Tuple<int>> in{{2, 0, 42}};
  auto& src = flow.add<TimedSource<int>>(in, 4, 10);
  auto& e = make_embed_flatmap<int, std::string>(
      flow,
      [](const int& v) { return std::vector<std::string>{std::to_string(v)}; });
  auto& sink = flow.add<CollectorSink<Embedded<std::string>>>();
  flow.connect(src.out(), e.in());
  flow.connect(e.out(), sink.in());
  flow.run();
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].value.items(), (std::vector<std::string>{"42"}));
}

}  // namespace
}  // namespace aggspes
