// Unit tests for the C2/C3 enforcement algorithms (Listings 4 and 5).
#include "aggbased/loop_guard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

using Env = Embedded<int>;

Tuple<Env> from_e(Timestamp ts, std::vector<int> items) {
  return {ts, 0, Env{std::move(items), kFromEmbed}};
}
Tuple<Env> successor(Timestamp ts, std::vector<int> items,
                     std::int64_t index) {
  return {ts, 0, Env{std::move(items), index}};
}

// --- C2 guard (Listing 4) ---------------------------------------------
//
// These tests inject elements directly into the guard's ports so the exact
// interleaving of main-stream and loop-stream events is under test control.

struct C2Harness {
  Flow flow;
  C2Guard<int>& guard;
  CollectorSink<Env>& sink;

  explicit C2Harness(Timestamp lateness)
      : guard(flow.add<C2Guard<int>>(lateness)),
        sink(flow.add<CollectorSink<Env>>()) {
    flow.connect(guard.out(), sink.in());
  }

  void main(Element<Env> e) {
    guard.in(0).receive(e);
    flow.drain();
  }
  void loop(Tuple<Env> t) {
    guard.loop_in().receive(Element<Env>{std::move(t)});
    flow.drain();
  }
};

TEST(C2Guard, WatermarkWithinBoundPassesImmediately) {
  C2Harness h(/*lateness=*/5);
  h.main(from_e(10, {1, 2}));
  h.main(Watermark{11});  // B = 10 + 5 = 15; 11 <= B → forwarded
  ASSERT_EQ(h.sink.watermarks(), (std::vector<Timestamp>{11}));
}

TEST(C2Guard, WatermarkBeyondBoundParkedUntilSuccessorsReturn) {
  C2Harness h(/*lateness=*/5);
  h.main(from_e(10, {1, 2}));
  h.main(Watermark{100});  // > B = 15 → parked
  EXPECT_TRUE(h.sink.watermarks().empty());
  h.loop(successor(10, {1, 2}, 0));
  EXPECT_TRUE(h.sink.watermarks().empty());  // still 1 outstanding
  h.loop(successor(10, {1, 2}, 1));          // drains succΓ → B = ∞
  ASSERT_EQ(h.sink.watermarks(), (std::vector<Timestamp>{100}));
  // Every tuple was forwarded: 1 envelope + 2 successors.
  EXPECT_EQ(h.sink.tuples().size(), 3u);
}

TEST(C2Guard, OnlyLatestEligibleParkedWatermarkForwarded) {
  C2Harness h(/*lateness=*/5);
  h.main(from_e(10, {1}));
  h.main(Watermark{40});
  h.main(Watermark{50});
  h.main(Watermark{60});
  EXPECT_TRUE(h.sink.watermarks().empty());
  h.loop(successor(10, {1}, 0));
  // The latest parked watermark is forwarded, earlier ones discarded
  // (List. 4, L17-21).
  ASSERT_EQ(h.sink.watermarks(), (std::vector<Timestamp>{60}));
}

TEST(C2Guard, EndHeldUntilLoopDrains) {
  C2Harness h(/*lateness=*/5);
  h.main(from_e(10, {1, 2, 3}));
  h.main(Element<Env>{EndOfStream{}});
  EXPECT_FALSE(h.sink.ended());
  h.loop(successor(10, {1, 2, 3}, 0));
  h.loop(successor(10, {1, 2, 3}, 1));
  EXPECT_FALSE(h.sink.ended());
  h.loop(successor(10, {1, 2, 3}, 2));
  EXPECT_TRUE(h.sink.ended());
  // End came after every successor tuple.
  EXPECT_EQ(h.sink.tuples().size(), 4u);
}

TEST(C2Guard, BoundTracksEarliestOutstandingGroup) {
  C2Harness h(/*lateness=*/3);
  h.main(from_e(10, {1, 2}));
  h.main(from_e(20, {7}));
  // Two groups outstanding; earliest is τ=10 → B = 13.
  EXPECT_EQ(h.guard.bound(), 13);
  EXPECT_EQ(h.guard.outstanding_groups(), 2u);
  h.loop(successor(10, {1, 2}, 0));
  h.loop(successor(10, {1, 2}, 1));
  EXPECT_EQ(h.guard.bound(), 23);  // now τ=20 governs
  h.loop(successor(20, {7}, 0));
  EXPECT_EQ(h.guard.bound(), kMaxTimestamp);
}

TEST(C2Guard, NoLoopTrafficIsTransparent) {
  C2Harness h(/*lateness=*/5);
  h.main(Watermark{5});
  h.main(Watermark{9});
  h.main(Element<Env>{EndOfStream{}});
  EXPECT_EQ(h.sink.watermarks(), (std::vector<Timestamp>{5, 9}));
  EXPECT_TRUE(h.sink.ended());
}

// --- C3 guard (Listing 5) ---------------------------------------------

TEST(C3Guard, SingleItemEnvelopeForwardsItsTimestampAsWatermark) {
  Flow flow;
  auto& guard = flow.add<C3Guard<int>>();
  auto& sink = flow.add<CollectorSink<Env>>();
  auto& src = flow.add<ScriptSource<Env>>(std::vector<Element<Env>>{
      successor(10, {1}, 0), EndOfStream{}});
  flow.connect(src.out(), guard.in(0));
  flow.connect(guard.out(), sink.in());
  flow.run();
  // |t[1]| − 1 = 0 siblings: succΓ empty → forward t.τ.
  EXPECT_EQ(sink.watermarks(), (std::vector<Timestamp>{10}));
}

TEST(C3Guard, WatermarkHeldWhileSiblingsOutstanding) {
  Flow flow;
  auto& guard = flow.add<C3Guard<int>>();
  auto& sink = flow.add<CollectorSink<Env>>();
  auto& src = flow.add<ScriptSource<Env>>(std::vector<Element<Env>>{
      successor(10, {1, 2, 3}, 0),  // registers 2 outstanding siblings
      Watermark{11},                // must not pass as-is: capped at τ−δ
      successor(10, {1, 2, 3}, 1),
      successor(10, {1, 2, 3}, 2),  // chain complete → succΓ empty
      Watermark{12},
      EndOfStream{},
  });
  flow.connect(src.out(), guard.in(0));
  flow.connect(guard.out(), sink.in());
  flow.run();
  // While outstanding: forwarded watermark is at most firstKey − δ = 9.
  // After the chain completes the last successor's τ (10) and then W=12
  // may pass. No tuple at the sink may be late.
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_EQ(sink.watermark_regressions(), 0);
  ASSERT_FALSE(sink.watermarks().empty());
  EXPECT_EQ(sink.watermarks().back(), 12);
  for (Timestamp w : sink.watermarks()) EXPECT_LE(w, 12);
  // The 11 watermark must have been replaced by something <= 9.
  EXPECT_LE(sink.watermarks()[0], 9);
}

TEST(C3Guard, InterleavedGroupsRespectEarliestOutstanding) {
  Flow flow;
  auto& guard = flow.add<C3Guard<int>>();
  auto& sink = flow.add<CollectorSink<Env>>();
  auto& src = flow.add<ScriptSource<Env>>(std::vector<Element<Env>>{
      successor(10, {1, 2}, 0),  // group τ=10, 1 outstanding
      successor(20, {5}, 0),     // group τ=20 completes instantly...
      // ...but succΓ = {10}: watermark must stay <= 9.
      successor(10, {1, 2}, 1),  // completes τ=10 → forward 10
      Watermark{25},
      EndOfStream{},
  });
  flow.connect(src.out(), guard.in(0));
  flow.connect(guard.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_EQ(sink.watermark_regressions(), 0);
  ASSERT_FALSE(sink.watermarks().empty());
  for (std::size_t i = 0; i + 1 < sink.watermarks().size(); ++i) {
    EXPECT_LT(sink.watermarks()[i], sink.watermarks()[i + 1]);
  }
  EXPECT_EQ(sink.watermarks().back(), 25);
}

TEST(C3Guard, TuplesAlwaysPassThroughImmediately) {
  Flow flow;
  auto& guard = flow.add<C3Guard<int>>();
  auto& sink = flow.add<CollectorSink<Env>>();
  auto& src = flow.add<ScriptSource<Env>>(std::vector<Element<Env>>{
      successor(10, {1, 2}, 0), successor(10, {1, 2}, 1), EndOfStream{}});
  flow.connect(src.out(), guard.in(0));
  flow.connect(guard.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 2u);
  EXPECT_TRUE(sink.ended());
}

}  // namespace
}  // namespace aggspes
