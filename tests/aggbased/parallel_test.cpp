// Tests for parallel AggBased deployments (§ 8 future work) and the Union
// operator (P1): N physical Embed/Unfold compositions behind a key
// splitter must enforce the same logical FM semantics as one.
#include "aggbased/parallel.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"
#include "core/runtime/threaded_runtime.hpp"

namespace aggspes {
namespace {

TEST(UnionOp, MergesTuplesAndMinCombinesWatermarks) {
  Flow flow;
  auto& s1 = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
      Tuple<int>{1, 0, 1}, Watermark{10}, Watermark{40}, EndOfStream{}});
  auto& s2 = flow.add<ScriptSource<int>>(std::vector<Element<int>>{
      Tuple<int>{2, 0, 2}, Watermark{5}, Watermark{40}, EndOfStream{}});
  auto& u = flow.add<UnionOp<int>>(2);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(s1.out(), u.in(0));
  flow.connect(s2.out(), u.in(1));
  flow.connect(u.out(), sink.in());
  flow.run();
  EXPECT_EQ(sink.tuples().size(), 2u);
  // Combined watermark = min over ports: 5, then 40.
  EXPECT_EQ(sink.watermarks(), (std::vector<Timestamp>{5, 40}));
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.watermark_regressions(), 0);
}

std::vector<Tuple<int>> random_ints(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Timestamp> gap(0, 2);
  std::uniform_int_distribution<int> val(0, 40);
  std::vector<Tuple<int>> v;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap(rng);
    v.push_back({ts, 0, val(rng)});
  }
  return v;
}

FlatMapFn<int, int> test_fm() {
  return [](const int& v) {
    std::vector<int> out;
    for (int i = 0; i < v % 3; ++i) out.push_back(v * 10 + i);
    return out;
  };
}

class ParallelismSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelismSweep, MatchesDedicatedForAnyInstanceCount) {
  const int parallelism = GetParam();
  auto in = random_ints(13, 250);
  const Timestamp flush = in.back().ts + 30;

  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(in, 6, flush);
  auto& d_op = ded.add<FlatMapOp<int, int>>(test_fm());
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_op.in());
  ded.connect(d_op.out(), d_sink.in());
  ded.run();

  Flow par;
  auto& p_src = par.add<TimedSource<int>>(in, 6, flush);
  ParallelAggBasedFlatMap<int, int> p_op(par, test_fm(), 6, parallelism);
  auto& p_sink = par.add<CollectorSink<int>>();
  par.connect(p_src.out(), p_op.in());
  par.connect(p_op.out(), p_sink.in());
  par.run();

  EXPECT_EQ(p_sink.multiset(), d_sink.multiset());
  EXPECT_EQ(p_sink.late_tuples(), 0);
  EXPECT_EQ(p_sink.watermark_regressions(), 0);
  EXPECT_TRUE(p_sink.ended());
}

INSTANTIATE_TEST_SUITE_P(Instances, ParallelismSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(ParallelAggBased, RunsOnThreadedRuntime) {
  auto in = random_ints(17, 200);
  const Timestamp flush = in.back().ts + 30;

  Flow ref;
  auto& r_src = ref.add<TimedSource<int>>(in, 6, flush);
  auto& r_op = ref.add<FlatMapOp<int, int>>(test_fm());
  auto& r_sink = ref.add<CollectorSink<int>>();
  ref.connect(r_src.out(), r_op.in());
  ref.connect(r_op.out(), r_sink.in());
  ref.run();

  ThreadedFlow tf;
  auto& t_src = tf.add<TimedSource<int>>(in, 6, flush);
  ParallelAggBasedFlatMap<int, int> t_op(tf, test_fm(), 6, 2);
  auto& t_sink = tf.add<CollectorSink<int>>();
  tf.connect(t_src, t_src.out(), t_op.in_node(), t_op.in());
  tf.connect(t_op.out_node(), t_op.out(), t_sink, t_sink.in());
  tf.run();

  EXPECT_EQ(t_sink.multiset(), r_sink.multiset());
  EXPECT_TRUE(t_sink.ended());
}

}  // namespace
}  // namespace aggspes
