// Theorem 2, end to end: the AggBased Join (Listing 2 + Listing 3 with the
// Listing 4/5 guards) produces exactly the Dedicated Join's outputs on
// randomized streams, window shapes, key skews, and predicate
// selectivities. The A+-based join (§ 5.1) is checked too. A brute-force
// oracle anchors both.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "aggbased/aplus.hpp"
#include "aggbased/embed_join.hpp"
#include "aggbased/join.hpp"
#include "core/operators/join.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"

namespace aggspes {
namespace {

struct Ev {
  int key;
  int val;
  friend bool operator==(const Ev&, const Ev&) = default;
  friend auto operator<=>(const Ev&, const Ev&) = default;
};

}  // namespace
}  // namespace aggspes

template <>
struct std::hash<aggspes::Ev> {
  size_t operator()(const aggspes::Ev& e) const {
    return aggspes::hash_values(e.key, e.val);
  }
};

namespace aggspes {
namespace {

using Pair = std::pair<Ev, Ev>;
using Outputs = std::multiset<std::tuple<Timestamp, Ev, Ev>>;
using Predicate = std::function<bool(const Ev&, const Ev&)>;

std::function<int(const Ev&)> by_key() {
  return [](const Ev& e) { return e.key; };
}

Outputs to_outputs(const CollectorSink<Pair>& sink) {
  Outputs out;
  for (const auto& t : sink.tuples()) {
    out.emplace(t.ts, t.value.first, t.value.second);
  }
  return out;
}

Outputs oracle(const std::vector<Tuple<Ev>>& lefts,
               const std::vector<Tuple<Ev>>& rights, const WindowSpec& spec,
               const Predicate& f_p) {
  Outputs out;
  for (const auto& l : lefts) {
    for (const auto& r : rights) {
      if (l.value.key != r.value.key || !f_p(l.value, r.value)) continue;
      for (Timestamp wl : spec.instances(l.ts)) {
        if (wl <= r.ts && r.ts < spec.end(wl)) {
          out.emplace(spec.output_ts(wl), l.value, r.value);
        }
      }
    }
  }
  return out;
}

struct Streams {
  std::vector<Tuple<Ev>> lefts;
  std::vector<Tuple<Ev>> rights;
  Timestamp flush;
};

Outputs run_dedicated(const Streams& s, WindowSpec spec, Predicate f_p,
                      Timestamp period) {
  Flow flow;
  auto& s1 = flow.add<TimedSource<Ev>>(s.lefts, period, s.flush);
  auto& s2 = flow.add<TimedSource<Ev>>(s.rights, period, s.flush);
  auto& join = flow.add<JoinOp<Ev, Ev, int>>(spec, by_key(), by_key(),
                                             std::move(f_p));
  auto& sink = flow.add<CollectorSink<Pair>>();
  flow.connect(s1.out(), join.in_left());
  flow.connect(s2.out(), join.in_right());
  flow.connect(join.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  return to_outputs(sink);
}

Outputs run_aggbased(const Streams& s, WindowSpec spec, Predicate f_p,
                     Timestamp period) {
  Flow flow;
  auto& s1 = flow.add<TimedSource<Ev>>(s.lefts, period, s.flush);
  auto& s2 = flow.add<TimedSource<Ev>>(s.rights, period, s.flush);
  AggBasedJoin<Ev, Ev, int> join(flow, spec, by_key(), by_key(),
                                 std::move(f_p), /*lateness=*/period);
  auto& sink = flow.add<CollectorSink<Pair>>();
  flow.connect(s1.out(), join.left_in());
  flow.connect(s2.out(), join.right_in());
  flow.connect(join.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);
  EXPECT_EQ(sink.watermark_regressions(), 0);
  return to_outputs(sink);
}

Outputs run_aplus(const Streams& s, WindowSpec spec, Predicate f_p,
                  Timestamp period) {
  Flow flow;
  auto& s1 = flow.add<TimedSource<Ev>>(s.lefts, period, s.flush);
  auto& s2 = flow.add<TimedSource<Ev>>(s.rights, period, s.flush);
  AplusJoin<Ev, Ev, int> join(flow, spec, by_key(), by_key(),
                              std::move(f_p));
  auto& sink = flow.add<CollectorSink<Pair>>();
  flow.connect(s1.out(), join.left_in());
  flow.connect(s2.out(), join.right_in());
  flow.connect(join.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);
  return to_outputs(sink);
}

void expect_all_equal(const Streams& s, WindowSpec spec,
                      const Predicate& f_p, Timestamp period) {
  Outputs truth = oracle(s.lefts, s.rights, spec, f_p);
  EXPECT_EQ(run_dedicated(s, spec, f_p, period), truth) << "Dedicated";
  EXPECT_EQ(run_aggbased(s, spec, f_p, period), truth) << "AggBased";
  EXPECT_EQ(run_aplus(s, spec, f_p, period), truth) << "A+";
}

TEST(JoinEquivalence, BasicTumbling) {
  Streams s{{{1, 0, {7, 1}}, {3, 0, {7, 2}}},
            {{2, 0, {7, 10}}, {12, 0, {7, 11}}},
            /*flush=*/40};
  expect_all_equal(s, WindowSpec{.advance = 10, .size = 10},
                   [](const Ev&, const Ev&) { return true; }, 5);
}

TEST(JoinEquivalence, SlidingWindows) {
  Streams s{{{4, 0, {1, 1}}, {11, 0, {1, 2}}},
            {{6, 0, {1, 3}}, {13, 0, {1, 4}}},
            /*flush=*/50};
  expect_all_equal(s, WindowSpec{.advance = 5, .size = 15},
                   [](const Ev&, const Ev&) { return true; }, 5);
}

TEST(JoinEquivalence, KeyIsolation) {
  Streams s{{{1, 0, {1, 1}}, {2, 0, {2, 2}}},
            {{3, 0, {1, 3}}, {4, 0, {3, 4}}},
            /*flush=*/40};
  expect_all_equal(s, WindowSpec{.advance = 10, .size = 10},
                   [](const Ev&, const Ev&) { return true; }, 5);
}

TEST(JoinEquivalence, EmptyResult) {
  Streams s{{{1, 0, {1, 1}}}, {{2, 0, {1, 2}}}, /*flush=*/40};
  expect_all_equal(s, WindowSpec{.advance = 10, .size = 10},
                   [](const Ev&, const Ev&) { return false; }, 5);
}

TEST(JoinEquivalence, DuplicateTuplesMatchWithMultiplicity) {
  Streams s{{{1, 0, {1, 5}}, {1, 0, {1, 5}}},   // two identical lefts
            {{2, 0, {1, 6}}, {2, 0, {1, 6}}},   // two identical rights
            /*flush=*/40};
  // Each left must pair with each right: 4 results.
  expect_all_equal(s, WindowSpec{.advance = 10, .size = 10},
                   [](const Ev&, const Ev&) { return true; }, 5);
}

TEST(JoinEquivalence, OneSidedStream) {
  Streams s{{{1, 0, {1, 1}}, {2, 0, {1, 2}}}, {}, /*flush=*/40};
  expect_all_equal(s, WindowSpec{.advance = 10, .size = 10},
                   [](const Ev&, const Ev&) { return true; }, 5);
}

// Property sweep: Theorem 2 over seeds × window shapes × key skew ×
// predicate selectivity.
struct SweepCase {
  int seed;
  Timestamp wa;
  Timestamp ws;
  int keys;     // smaller = more skew per key
  int mod;      // predicate: (a.val + b.val) % mod != 0; bigger = more hits
};

class JoinEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(JoinEquivalenceSweep, AllImplementationsMatchOracle) {
  const SweepCase& c = GetParam();
  std::mt19937 rng(static_cast<unsigned>(c.seed));
  std::uniform_int_distribution<Timestamp> ts_d(0, 50);
  std::uniform_int_distribution<int> key_d(0, c.keys - 1);
  std::uniform_int_distribution<int> val_d(0, 9);
  auto gen = [&](int n) {
    std::vector<Tuple<Ev>> v;
    for (int i = 0; i < n; ++i) {
      v.push_back({ts_d(rng), 0, {key_d(rng), val_d(rng)}});
    }
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.ts < b.ts; });
    return v;
  };
  Streams s{gen(20), gen(20), /*flush=*/50 + c.ws + 20};
  const int mod = c.mod;
  expect_all_equal(
      s, WindowSpec{.advance = c.wa, .size = c.ws},
      [mod](const Ev& a, const Ev& b) { return (a.val + b.val) % mod != 0; },
      /*period=*/6);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, JoinEquivalenceSweep,
    ::testing::Values(SweepCase{1, 10, 10, 2, 2}, SweepCase{2, 10, 10, 4, 3},
                      SweepCase{3, 5, 15, 2, 2}, SweepCase{4, 5, 15, 4, 5},
                      SweepCase{5, 10, 20, 3, 2}, SweepCase{6, 7, 7, 1, 4},
                      SweepCase{7, 3, 9, 5, 3}, SweepCase{8, 12, 24, 2, 2}));

}  // namespace
}  // namespace aggspes
