// Tests for the reference-SPE validation harness (the paper's § 1/§ 6
// motivating use: validate dedicated operator implementations against the
// Aggregate-only reference).
#include "aggbased/reference_validator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aggspes {
namespace {

std::vector<Tuple<int>> sample_input() {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 40; ts += 2) in.push_back({ts, 0, int(ts % 9)});
  return in;
}

auto int_fmt = [](const int& v) { return std::to_string(v); };

TEST(ReferenceValidator, CorrectFlatMapPasses) {
  auto rep = validate_flatmap<int, int>(
      [](const int& v) {
        return v % 2 ? std::vector<int>{v, v + 1} : std::vector<int>{};
      },
      sample_input(), /*watermark_period=*/5, int_fmt);
  EXPECT_TRUE(rep.match);
  EXPECT_TRUE(static_cast<bool>(rep));
  EXPECT_EQ(rep.dedicated_outputs, rep.reference_outputs);
  EXPECT_TRUE(rep.divergence.empty());
}

// A "dedicated implementation" with an injected bug: we simulate it by
// validating one function against a reference built from a different one —
// exactly what the harness is for (catching semantics drift).
TEST(ReferenceValidator, DivergenceIsDetectedAndDescribed) {
  // Build the comparison by hand: dedicated drops v == 4 (the bug).
  std::vector<Tuple<int>> input = sample_input();
  Timestamp max_ts = input.back().ts;
  const Timestamp flush = max_ts + 20;

  Flow ded;
  auto& d_src = ded.add<TimedSource<int>>(input, 5, flush);
  auto& d_op = ded.add<FlatMapOp<int, int>>([](const int& v) {
    return v == 4 ? std::vector<int>{} : std::vector<int>{v};  // bug
  });
  auto& d_sink = ded.add<CollectorSink<int>>();
  ded.connect(d_src.out(), d_op.in());
  ded.connect(d_op.out(), d_sink.in());
  ded.run();

  Flow ref;
  auto& r_src = ref.add<TimedSource<int>>(input, 5, flush);
  AggBasedFlatMap<int, int> r_op(
      ref, [](const int& v) { return std::vector<int>{v}; }, 5);
  auto& r_sink = ref.add<CollectorSink<int>>();
  ref.connect(r_src.out(), r_op.in());
  ref.connect(r_op.out(), r_sink.in());
  ref.run();

  auto rep = detail::compare<int>(d_sink.multiset(), r_sink.multiset(),
                                  int_fmt);
  EXPECT_FALSE(rep.match);
  EXPECT_LT(rep.dedicated_outputs, rep.reference_outputs);
  EXPECT_NE(rep.divergence.find("reference has"), std::string::npos);
  EXPECT_NE(rep.divergence.find("4"), std::string::npos);
}

TEST(ReferenceValidator, CorrectJoinPasses) {
  std::vector<Tuple<int>> lefts, rights;
  for (Timestamp ts = 0; ts < 30; ts += 3) lefts.push_back({ts, 0, int(ts)});
  for (Timestamp ts = 1; ts < 30; ts += 4) rights.push_back({ts, 0, int(ts)});
  auto rep = validate_join<int, int, int>(
      WindowSpec{.advance = 5, .size = 10},
      [](const int& v) { return v % 3; }, [](const int& v) { return v % 3; },
      [](const int& a, const int& b) { return a < b; }, lefts, rights,
      /*watermark_period=*/5, [](const std::pair<int, int>& p) {
        return std::to_string(p.first) + "," + std::to_string(p.second);
      });
  EXPECT_TRUE(rep.match) << rep.divergence;
  EXPECT_GT(rep.dedicated_outputs, 0u);
}

TEST(ReferenceValidator, EmptyInputTriviallyPasses) {
  auto rep = validate_flatmap<int, int>(
      [](const int& v) { return std::vector<int>{v}; }, {}, 5, int_fmt);
  EXPECT_TRUE(rep.match);
  EXPECT_EQ(rep.dedicated_outputs, 0u);
}

}  // namespace
}  // namespace aggspes
