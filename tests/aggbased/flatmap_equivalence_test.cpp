// Theorem 1, end to end: the AggBased FlatMap (Listing 1 + Listing 3 with
// the Listing 4/5 guards) produces exactly the Dedicated FlatMap's outputs
// — same payloads, same event times, same multiplicities — for randomized
// streams, selectivities, and watermark spacings. Filter and Map follow as
// special cases (§ 4). The A+-based FM (§ 5.1) is checked too.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "aggbased/aplus.hpp"
#include "aggbased/flatmap.hpp"
#include "core/operators/sink.hpp"
#include "core/operators/source.hpp"
#include "core/operators/stateless.hpp"

namespace aggspes {
namespace {

using Outputs = std::multiset<std::pair<Timestamp, int>>;

Outputs run_dedicated(const std::vector<Tuple<int>>& in,
                      FlatMapFn<int, int> fm, Timestamp period,
                      Timestamp flush_to) {
  Flow flow;
  auto& src = flow.add<TimedSource<int>>(in, period, flush_to);
  auto& op = flow.add<FlatMapOp<int, int>>(std::move(fm));
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  return sink.multiset();
}

Outputs run_aggbased(const std::vector<Tuple<int>>& in,
                     FlatMapFn<int, int> fm, Timestamp period,
                     Timestamp flush_to) {
  Flow flow;
  auto& src = flow.add<TimedSource<int>>(in, period, flush_to);
  AggBasedFlatMap<int, int> op(flow, std::move(fm), /*lateness=*/period);
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);            // C3: no late arrivals
  EXPECT_EQ(sink.watermark_regressions(), 0);  // watermarks monotonic
  return sink.multiset();
}

Outputs run_aplus(const std::vector<Tuple<int>>& in, FlatMapFn<int, int> fm,
                  Timestamp period, Timestamp flush_to) {
  Flow flow;
  auto& src = flow.add<TimedSource<int>>(in, period, flush_to);
  auto& op = make_aplus_flatmap<int, int>(flow, std::move(fm));
  auto& sink = flow.add<CollectorSink<int>>();
  flow.connect(src.out(), op.in());
  flow.connect(op.out(), sink.in());
  flow.run();
  EXPECT_TRUE(sink.ended());
  EXPECT_EQ(sink.late_tuples(), 0);
  return sink.multiset();
}

void expect_all_equal(const std::vector<Tuple<int>>& in,
                      const FlatMapFn<int, int>& fm, Timestamp period) {
  Timestamp max_ts = 0;
  for (const auto& t : in) max_ts = std::max(max_ts, t.ts);
  const Timestamp flush = max_ts + 3 * period + 5;
  Outputs d = run_dedicated(in, fm, period, flush);
  Outputs a = run_aggbased(in, fm, period, flush);
  Outputs ap = run_aplus(in, fm, period, flush);
  EXPECT_EQ(a, d) << "AggBased != Dedicated";
  EXPECT_EQ(ap, d) << "A+ != Dedicated";
}

TEST(FlatMapEquivalence, SelectivityTwo) {
  std::vector<Tuple<int>> in{{0, 0, 1}, {2, 0, 2}, {5, 0, 3}};
  expect_all_equal(
      in, [](const int& v) { return std::vector<int>{v, v * 10}; }, 3);
}

TEST(FlatMapEquivalence, FilterLikeSelectivity) {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 30; ++ts) in.push_back({ts, 0, int(ts) % 7});
  expect_all_equal(
      in,
      [](const int& v) {
        return v % 2 == 0 ? std::vector<int>{v} : std::vector<int>{};
      },
      4);
}

TEST(FlatMapEquivalence, MapLikeSelectivity) {
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 20; ts += 2) in.push_back({ts, 0, int(ts)});
  expect_all_equal(in, [](const int& v) { return std::vector<int>{v + 1}; },
                   5);
}

TEST(FlatMapEquivalence, ZeroSelectivityEverywhere) {
  std::vector<Tuple<int>> in{{1, 0, 1}, {2, 0, 2}};
  expect_all_equal(in, [](const int&) { return std::vector<int>{}; }, 3);
}

TEST(FlatMapEquivalence, DuplicateInputTuples) {
  // FM must produce each duplicate's outputs: 3 identical inputs ->
  // 3 copies of each output.
  std::vector<Tuple<int>> in{{4, 0, 9}, {4, 0, 9}, {4, 0, 9}};
  expect_all_equal(
      in, [](const int& v) { return std::vector<int>{v, v + 1}; }, 3);
}

TEST(FlatMapEquivalence, BurstsAtSameTimestamp) {
  std::vector<Tuple<int>> in;
  for (int i = 0; i < 10; ++i) in.push_back({7, 0, i});
  expect_all_equal(
      in, [](const int& v) { return std::vector<int>{v * 2, v * 3}; }, 4);
}

TEST(AggBasedFilter, BehavesLikeDedicatedFilter) {
  Flow dflow;
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 25; ++ts) in.push_back({ts, 0, int(ts * 3)});
  auto& dsrc = dflow.add<TimedSource<int>>(in, 4, 40);
  auto& dfilter = dflow.add<FilterOp<int>>([](int v) { return v % 2 == 0; });
  auto& dsink = dflow.add<CollectorSink<int>>();
  dflow.connect(dsrc.out(), dfilter.in());
  dflow.connect(dfilter.out(), dsink.in());
  dflow.run();

  Flow aflow;
  auto& asrc = aflow.add<TimedSource<int>>(in, 4, 40);
  auto afilter = make_aggbased_filter<int>(
      aflow, [](const int& v) { return v % 2 == 0; }, /*lateness=*/4);
  auto& asink = aflow.add<CollectorSink<int>>();
  aflow.connect(asrc.out(), afilter.in());
  aflow.connect(afilter.out(), asink.in());
  aflow.run();

  EXPECT_EQ(asink.multiset(), dsink.multiset());
}

TEST(AggBasedMap, BehavesLikeDedicatedMap) {
  Flow dflow;
  std::vector<Tuple<int>> in;
  for (Timestamp ts = 0; ts < 25; ts += 3) in.push_back({ts, 0, int(ts)});
  auto& dsrc = dflow.add<TimedSource<int>>(in, 4, 40);
  auto& dmap = dflow.add<MapOp<int, int>>([](const int& v) { return -v; });
  auto& dsink = dflow.add<CollectorSink<int>>();
  dflow.connect(dsrc.out(), dmap.in());
  dflow.connect(dmap.out(), dsink.in());
  dflow.run();

  Flow aflow;
  auto& asrc = aflow.add<TimedSource<int>>(in, 4, 40);
  auto amap = make_aggbased_map<int, int>(
      aflow, [](const int& v) { return -v; }, /*lateness=*/4);
  auto& asink = aflow.add<CollectorSink<int>>();
  aflow.connect(asrc.out(), amap.in());
  aflow.connect(amap.out(), asink.in());
  aflow.run();

  EXPECT_EQ(asink.multiset(), dsink.multiset());
}

// Property sweep: Theorem 1 on randomized streams across selectivity
// classes and watermark spacings.
class FlatMapEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, Timestamp>> {};

TEST_P(FlatMapEquivalenceSweep, AggBasedMatchesDedicated) {
  auto [seed, max_outputs, period] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed * 977 + max_outputs));
  std::uniform_int_distribution<Timestamp> gap(0, 3);
  std::uniform_int_distribution<int> val(0, 50);

  std::vector<Tuple<int>> in;
  Timestamp ts = 0;
  for (int i = 0; i < 60; ++i) {
    ts += gap(rng);
    in.push_back({ts, 0, val(rng)});
  }
  // Deterministic f_FM whose fan-out depends on the value: 0..max_outputs.
  const int mo = max_outputs;
  auto fm = [mo](const int& v) {
    std::vector<int> outs;
    for (int i = 0; i < (v % (mo + 1)); ++i) outs.push_back(v * 100 + i);
    return outs;
  };
  expect_all_equal(in, fm, period);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, FlatMapEquivalenceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(Timestamp{1}, Timestamp{4},
                                         Timestamp{9})));

}  // namespace
}  // namespace aggspes
